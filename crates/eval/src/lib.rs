//! # tep-eval
//!
//! The paper's evaluation framework (§5, Fig. 6), end to end:
//!
//! 1. **Seed events** (§5.2.1): synthesized from SmartSantander-style
//!    sensor capabilities (Table 3), vehicle platforms, BLUED-style
//!    appliances, DERI-style rooms and Santander/Galway locations
//!    ([`datasets`], [`SeedGenerator`]);
//! 2. **Semantic expansion** (§5.2.2): seed events expanded into a large
//!    heterogeneous set by replacing terms with synonyms/related terms
//!    from the EuroVoc-like thesaurus ([`Expander`]);
//! 3. **Approximate subscriptions & ground truth** (§5.2.3): exact
//!    subscriptions drawn from seed tuples, fully `~`-approximated; the
//!    relevance function is isomorphic to exact matching over seeds
//!    ([`SubscriptionGenerator`], [`GroundTruth`]);
//! 4. **Theme-tag generation** (§5.2.4): size-controlled samples of
//!    micro-thesaurus top terms with containment between event and
//!    subscription themes ([`ThemeSampler`]);
//! 5. **Metrics** (§5.1): 11-point interpolated precision/recall, maximal
//!    F1, and throughput ([`metrics`]);
//! 6. **Experiments** (§5.3): the grid behind Figures 7–10, the §5.2.5
//!    baseline, the Table 1 comparison and the §5.1 prior-work experiment
//!    ([`experiments`]).
//!
//! ```no_run
//! use tep_eval::{EvalConfig, Workload};
//!
//! let workload = Workload::generate(&EvalConfig::quick());
//! assert!(workload.events().len() > workload.seeds().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod datasets;
pub mod experiments;
pub mod metrics;

mod config;
mod expansion;
mod ground_truth;
mod oracle;
mod runner;
mod seed;
mod subscriptions;
mod themes;
mod workload;

pub use config::EvalConfig;
pub use expansion::Expander;
pub use ground_truth::GroundTruth;
pub use oracle::{offline_effectiveness, GroundTruthOracle};
pub use runner::{run_sub_experiment, MatcherStack, SubExperimentResult};
pub use seed::SeedGenerator;
pub use subscriptions::{approximate_all, SubscriptionGenerator};
pub use themes::{ThemeCombination, ThemeSampler};
pub use workload::Workload;
