//! Theme-tag sampling (paper §5.2.4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tep_thesaurus::{Domain, Term, Thesaurus};

/// One sampled combination of event and subscription theme tags.
///
/// The paper's invariant holds by construction: "In every combination,
/// the event theme tags set contains the subscription theme tags set or
/// vice versa."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThemeCombination {
    /// Tags for every event in the sub-experiment.
    pub event_tags: Vec<String>,
    /// Tags for every subscription in the sub-experiment.
    pub subscription_tags: Vec<String>,
}

impl ThemeCombination {
    /// Whether the containment invariant holds.
    pub fn containment_holds(&self) -> bool {
        let contains = |big: &[String], small: &[String]| small.iter().all(|t| big.contains(t));
        contains(&self.event_tags, &self.subscription_tags)
            || contains(&self.subscription_tags, &self.event_tags)
    }
}

/// Samples theme-tag combinations from the top terms of the six domains
/// used to expand the event set (§5.2.4).
#[derive(Debug)]
pub struct ThemeSampler {
    top_terms: Vec<Term>,
    rng: SmallRng,
}

impl ThemeSampler {
    /// Creates a sampler over the top terms of all six domains.
    pub fn new(thesaurus: &Thesaurus, seed: u64) -> ThemeSampler {
        ThemeSampler {
            top_terms: thesaurus.top_terms_of(&Domain::ALL),
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_0004),
        }
    }

    /// The size of the available tag vocabulary.
    pub fn vocabulary_len(&self) -> usize {
        self.top_terms.len()
    }

    /// Samples one combination with `event_size` event tags and
    /// `subscription_size` subscription tags; the smaller set is a subset
    /// of the larger one.
    ///
    /// # Panics
    ///
    /// Panics if the larger requested size exceeds the tag vocabulary.
    pub fn sample(&mut self, event_size: usize, subscription_size: usize) -> ThemeCombination {
        let large = event_size.max(subscription_size);
        let small = event_size.min(subscription_size);
        assert!(
            large <= self.top_terms.len(),
            "requested theme size {large} exceeds the {} available top terms",
            self.top_terms.len()
        );
        let large_set = self.sample_distinct(large);
        let small_set = self.subset_of(&large_set, small);
        if event_size >= subscription_size {
            ThemeCombination {
                event_tags: large_set,
                subscription_tags: small_set,
            }
        } else {
            ThemeCombination {
                event_tags: small_set,
                subscription_tags: large_set,
            }
        }
    }

    /// Samples one combination with **independent** draws for the two
    /// sides (no containment) — the paper's "no coupling mode", where
    /// sources and consumers "freely use representative terms in open
    /// environments when agreement is not possible" (§2.3, §5.3.3).
    /// Overlap then arises only from the skewed distribution of term
    /// usage by humans.
    pub fn sample_free(&mut self, event_size: usize, subscription_size: usize) -> ThemeCombination {
        assert!(
            event_size.max(subscription_size) <= self.top_terms.len(),
            "requested theme size exceeds the available top terms"
        );
        ThemeCombination {
            event_tags: self.sample_distinct(event_size),
            subscription_tags: self.sample_distinct(subscription_size),
        }
    }

    fn sample_distinct(&mut self, size: usize) -> Vec<String> {
        // Partial Fisher–Yates over indices.
        let mut idx: Vec<usize> = (0..self.top_terms.len()).collect();
        for i in 0..size {
            let j = self.rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..size]
            .iter()
            .map(|&i| self.top_terms[i].as_str().to_string())
            .collect()
    }

    fn subset_of(&mut self, set: &[String], size: usize) -> Vec<String> {
        let mut idx: Vec<usize> = (0..set.len()).collect();
        for i in 0..size {
            let j = self.rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..size].iter().map(|&i| set[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> ThemeSampler {
        ThemeSampler::new(&Thesaurus::eurovoc_like(), 11)
    }

    #[test]
    fn vocabulary_supports_size_30() {
        assert!(sampler().vocabulary_len() >= 30);
    }

    #[test]
    fn sizes_and_containment_event_larger() {
        let mut s = sampler();
        let c = s.sample(10, 3);
        assert_eq!(c.event_tags.len(), 10);
        assert_eq!(c.subscription_tags.len(), 3);
        assert!(c.containment_holds());
        assert!(c.subscription_tags.iter().all(|t| c.event_tags.contains(t)));
    }

    #[test]
    fn sizes_and_containment_subscription_larger() {
        let mut s = sampler();
        let c = s.sample(2, 12);
        assert_eq!(c.event_tags.len(), 2);
        assert_eq!(c.subscription_tags.len(), 12);
        assert!(c.containment_holds());
        assert!(c.event_tags.iter().all(|t| c.subscription_tags.contains(t)));
    }

    #[test]
    fn equal_sizes_yield_equal_sets() {
        let mut s = sampler();
        let c = s.sample(5, 5);
        let mut a = c.event_tags.clone();
        let mut b = c.subscription_tags.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn tags_are_distinct() {
        let mut s = sampler();
        let c = s.sample(30, 30);
        let mut tags = c.event_tags.clone();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), 30);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let th = Thesaurus::eurovoc_like();
        let a = ThemeSampler::new(&th, 5).sample(4, 2);
        let b = ThemeSampler::new(&th, 5).sample(4, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_request_panics() {
        sampler().sample(1000, 1);
    }
}
