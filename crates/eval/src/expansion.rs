//! Semantic expansion of seed events (paper §5.2.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tep_events::Event;
use tep_thesaurus::{Domain, Thesaurus};

/// Longest thesaurus phrase considered when scanning a text for
/// replaceable terms.
const MAX_PHRASE_WORDS: usize = 4;

/// Expands seed events into a large heterogeneous event set by replacing
/// one or more terms in their tuples with synonyms or related terms from
/// the thesaurus — the eTuner-style "synonyms transformation" the paper
/// adopts (§5.2.2).
///
/// Replacement is *phrase-aware*: inside a value like
/// `increased energy consumption event`, the known term
/// `energy consumption` is located and replaced as a unit, yielding e.g.
/// `increased electricity usage event` — exactly the §3 example pair.
#[derive(Debug)]
pub struct Expander<'t> {
    thesaurus: &'t Thesaurus,
    rng: SmallRng,
}

impl<'t> Expander<'t> {
    /// Creates an expander over `thesaurus` with a deterministic seed.
    pub fn new(thesaurus: &'t Thesaurus, seed: u64) -> Expander<'t> {
        Expander {
            thesaurus,
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_0002),
        }
    }

    /// All `(start_word, word_len)` spans of `text` that name a thesaurus
    /// term with at least one expansion in the allowed domains,
    /// longest-first per position.
    fn candidate_spans(&self, words: &[&str], within: Option<&[Domain]>) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        for start in 0..words.len() {
            let max_len = MAX_PHRASE_WORDS.min(words.len() - start);
            for len in (1..=max_len).rev() {
                let phrase = words[start..start + len].join(" ");
                if self.thesaurus.contains(&phrase)
                    && !self.thesaurus.expansions(&phrase, within).is_empty()
                {
                    spans.push((start, len));
                    break; // longest match at this position wins
                }
            }
        }
        spans
    }

    /// The effective domain restriction for one phrase: an unambiguous
    /// term (one domain) expands within its own concept freely, while an
    /// **ambiguous** term is restricted to the sense its event supports —
    /// the intersection of its domains with `within`. Returns `None` (no
    /// candidate) when an ambiguous term has no supported sense.
    fn effective_domains(&self, phrase: &str, within: Option<&[Domain]>) -> Option<Vec<Domain>> {
        let own = self.thesaurus.domains_of(phrase);
        match within {
            None => Some(own),
            Some(_) if own.len() <= 1 => Some(own),
            Some(allowed) => {
                let both: Vec<Domain> = own.into_iter().filter(|d| allowed.contains(d)).collect();
                if both.is_empty() {
                    None
                } else {
                    Some(both)
                }
            }
        }
    }

    /// Replaces one random known term in `text` with a random synonym or
    /// related term from the allowed domains. Returns `None` when the
    /// text contains no replaceable term.
    ///
    /// The domain restriction mirrors the paper's use of the micro-
    /// thesauri "conforming to the theme of the events" (§5.2.2): an
    /// environmental `noise` reading never expands into the
    /// communications sense of *noise* (`interference`).
    pub fn expand_text(&mut self, text: &str, within: Option<&[Domain]>) -> Option<String> {
        let words: Vec<&str> = text.split(' ').filter(|w| !w.is_empty()).collect();
        let spans: Vec<(usize, usize)> = self
            .candidate_spans(&words, None)
            .into_iter()
            .filter(|(start, len)| {
                let phrase = words[*start..*start + *len].join(" ");
                self.effective_domains(&phrase, within)
                    .is_some_and(|d| !self.thesaurus.expansions(&phrase, Some(&d)).is_empty())
            })
            .collect();
        if spans.is_empty() {
            return None;
        }
        let (start, len) = spans[self.rng.gen_range(0..spans.len())];
        let phrase = words[start..start + len].join(" ");
        let effective = self
            .effective_domains(&phrase, within)
            .expect("span was pre-filtered");
        let options = self.thesaurus.expansions(&phrase, Some(&effective));
        let replacement = &options[self.rng.gen_range(0..options.len())];
        let mut out: Vec<&str> = Vec::with_capacity(words.len());
        out.extend_from_slice(&words[..start]);
        out.extend(replacement.words());
        out.extend_from_slice(&words[start + len..]);
        Some(out.join(" "))
    }

    /// Infers the domains an event's **values** belong to (attributes are
    /// schema vocabulary — `measurement unit`, `sensor` — and would drag
    /// their own domains into every event). Used to pick the right sense
    /// of ambiguous terms during expansion.
    pub fn event_domains(&self, event: &Event) -> Vec<Domain> {
        let mut counts = [0usize; 6];
        for t in event.tuples() {
            let words: Vec<&str> = t.value().split(' ').filter(|w| !w.is_empty()).collect();
            for (start, len) in self.candidate_spans(&words, None) {
                let phrase = words[start..start + len].join(" ");
                for d in self.thesaurus.domains_of(&phrase) {
                    counts[d.index()] += 1;
                }
            }
        }
        let strong: Vec<Domain> = Domain::ALL
            .into_iter()
            .filter(|d| counts[d.index()] >= 2)
            .collect();
        if !strong.is_empty() {
            return strong;
        }
        let weak: Vec<Domain> = Domain::ALL
            .into_iter()
            .filter(|d| counts[d.index()] >= 1)
            .collect();
        if weak.is_empty() {
            Domain::ALL.to_vec()
        } else {
            weak
        }
    }

    /// Produces one expanded variant of `event`: 1–3 of its tuples get a
    /// term replaced (attribute or value side). Falls back to the
    /// unmodified event only if no tuple contains any known term.
    pub fn expand_event(&mut self, event: &Event) -> Event {
        let within = self.event_domains(event);
        let mut tuples: Vec<(String, String)> = event
            .tuples()
            .iter()
            .map(|t| (t.attribute().to_string(), t.value().to_string()))
            .collect();
        let wanted = self.rng.gen_range(1..=3usize);
        let mut replaced = 0;
        // Visit tuples in random order until enough replacements landed.
        let mut order: Vec<usize> = (0..tuples.len()).collect();
        for i in (1..order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &idx in &order {
            if replaced >= wanted {
                break;
            }
            let try_value_first = self.rng.gen_bool(0.7);
            let (attr, value) = tuples[idx].clone();
            // Not `if_same_then_else`: try_replace mutates the tuple and
            // advances the RNG, so the attempt order is load-bearing.
            #[allow(clippy::if_same_then_else)]
            let done = if try_value_first {
                self.try_replace(&mut tuples[idx].1, &value, &within)
                    || self.try_replace(&mut tuples[idx].0, &attr, &within)
            } else {
                self.try_replace(&mut tuples[idx].0, &attr, &within)
                    || self.try_replace(&mut tuples[idx].1, &value, &within)
            };
            if done {
                replaced += 1;
            }
        }
        let mut builder = Event::builder().theme_tags(event.theme_tags());
        let mut seen: Vec<String> = Vec::with_capacity(tuples.len());
        for (attr, value) in tuples {
            // An attribute replacement may collide with an existing
            // attribute; keep the first occurrence to preserve the event
            // invariant.
            if seen.contains(&attr) {
                continue;
            }
            seen.push(attr.clone());
            builder = builder.tuple(&attr, &value);
        }
        builder
            .build()
            .expect("expansion preserves event invariants")
    }

    fn try_replace(&mut self, slot: &mut String, original: &str, within: &[Domain]) -> bool {
        match self.expand_text(original, Some(within)) {
            Some(new_text) if new_text != original => {
                *slot = new_text;
                true
            }
            _ => false,
        }
    }

    /// Expands `seeds` into `target` events total. The seeds themselves
    /// are included first (they are valid members of the heterogeneous
    /// set); the remainder are expansions generated round-robin. Returns
    /// the events plus the provenance seed index of each.
    pub fn expand_all(&mut self, seeds: &[Event], target: usize) -> (Vec<Event>, Vec<usize>) {
        let mut events = Vec::with_capacity(target);
        let mut provenance = Vec::with_capacity(target);
        for (i, s) in seeds.iter().enumerate() {
            if events.len() >= target {
                break;
            }
            events.push(s.clone());
            provenance.push(i);
        }
        let mut i = 0usize;
        while events.len() < target && !seeds.is_empty() {
            let seed_idx = i % seeds.len();
            events.push(self.expand_event(&seeds[seed_idx]));
            provenance.push(seed_idx);
            i += 1;
        }
        (events, provenance)
    }
}

/// Convenience check used by tests: whether two events differ in at least
/// one tuple.
#[cfg(test)]
pub(crate) fn differs(a: &Event, b: &Event) -> bool {
    a.tuples().len() != b.tuples().len() || a.tuples().iter().zip(b.tuples()).any(|(x, y)| x != y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalConfig, SeedGenerator};

    fn thesaurus() -> Thesaurus {
        Thesaurus::eurovoc_like()
    }

    #[test]
    fn expands_the_paper_example_phrase() {
        let th = thesaurus();
        let mut e = Expander::new(&th, 1);
        // 'increased energy consumption event' must be expandable, and
        // the replacement must keep the surrounding words.
        let out = e
            .expand_text("increased energy consumption event", None)
            .expect("phrase contains a known term");
        assert!(out.starts_with("increased") || out.contains("event"));
        assert_ne!(out, "increased energy consumption event");
    }

    #[test]
    fn unknown_text_is_not_expandable() {
        let th = thesaurus();
        let mut e = Expander::new(&th, 1);
        assert!(e.expand_text("zzz qqq 9876", None).is_none());
    }

    #[test]
    fn longest_phrase_wins() {
        let th = thesaurus();
        let e = Expander::new(&th, 1);
        let words: Vec<&str> = "increased energy consumption event".split(' ').collect();
        let spans = e.candidate_spans(&words, None);
        // 'energy consumption' (start 1, len 2) must be found as a unit,
        // not 'energy' alone.
        assert!(spans.contains(&(1, 2)), "spans: {spans:?}");
    }

    #[test]
    fn expand_event_changes_something_and_keeps_invariants() {
        let th = thesaurus();
        let mut gen = SeedGenerator::new(&EvalConfig::tiny());
        let seeds = gen.generate(10);
        let mut e = Expander::new(&th, 7);
        let mut changed = 0;
        for s in &seeds {
            let x = e.expand_event(s);
            assert!(!x.tuples().is_empty());
            if differs(s, &x) {
                changed += 1;
            }
        }
        assert!(changed >= 8, "only {changed}/10 seeds were expanded");
    }

    #[test]
    fn expand_all_reaches_target_with_provenance() {
        let th = thesaurus();
        let mut gen = SeedGenerator::new(&EvalConfig::tiny());
        let seeds = gen.generate(6);
        let mut e = Expander::new(&th, 3);
        let (events, prov) = e.expand_all(&seeds, 50);
        assert_eq!(events.len(), 50);
        assert_eq!(prov.len(), 50);
        // Seeds come first.
        for i in 0..6 {
            assert_eq!(prov[i], i);
            assert!(!differs(&events[i], &seeds[i]));
        }
        // Every provenance index is valid.
        assert!(prov.iter().all(|&p| p < seeds.len()));
    }

    #[test]
    fn event_domains_are_inferred_from_vocabulary() {
        let th = thesaurus();
        let e = Expander::new(&th, 1);
        let energy_event = tep_events::Event::builder()
            .tuple("type", "increased energy consumption event")
            .tuple("device", "kettle")
            .tuple("room", "room 112")
            .tuple("city", "galway")
            .build()
            .unwrap();
        let domains = e.event_domains(&energy_event);
        assert!(domains.contains(&Domain::Energy), "{domains:?}");
        assert!(domains.contains(&Domain::Geography), "{domains:?}");
        assert!(!domains.contains(&Domain::SocialQuestions), "{domains:?}");
        assert!(
            !domains.contains(&Domain::EducationCommunications),
            "schema attributes must not pull in their domains: {domains:?}"
        );
    }

    #[test]
    fn expansion_never_crosses_into_unsupported_domains() {
        // An environment noise event must not expand 'noise' into its
        // communications sense.
        let th = thesaurus();
        let mut e = Expander::new(&th, 5);
        let noise_event = tep_events::Event::builder()
            .tuple("type", "noise reading event")
            .tuple("measurement unit", "decibel")
            .tuple("zone", "city centre")
            .tuple("city", "santander")
            .build()
            .unwrap();
        for _ in 0..25 {
            let x = e.expand_event(&noise_event);
            let ty = x.value_of("type").unwrap_or_default().to_string();
            assert!(
                !ty.contains("interference") && !ty.contains("static"),
                "communications sense leaked into `{ty}`"
            );
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let th = thesaurus();
        let mut gen = SeedGenerator::new(&EvalConfig::tiny());
        let seeds = gen.generate(4);
        let (a, _) = Expander::new(&th, 9).expand_all(&seeds, 30);
        let (b, _) = Expander::new(&th, 9).expand_all(&seeds, 30);
        assert_eq!(a, b);
    }
}
