//! Effectiveness and efficiency metrics (paper §5.1, Table 2).

use serde::{Deserialize, Serialize};

/// The 11 standard recall levels at which F1 is computed (§5.1).
pub const RECALL_LEVELS: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Interpolated precision of one ranked result list at the 11 recall
/// levels.
///
/// `ranked_relevance[i]` is whether the event at rank `i` (best score
/// first) is relevant; `total_relevant` is the ground-truth relevant
/// count, which may exceed the number of retrieved relevant events (the
/// matcher assigns score 0 to some). Standard IR interpolation applies:
/// `P_interp(r) = max { P(r') : r' ≥ r }`, and 0 beyond the achieved
/// recall.
pub fn interpolated_precision(ranked_relevance: &[bool], total_relevant: usize) -> [f64; 11] {
    let mut out = [0.0f64; 11];
    if total_relevant == 0 {
        return out;
    }
    // (recall, precision) at each rank where a relevant item appears.
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut found = 0usize;
    for (rank, relevant) in ranked_relevance.iter().enumerate() {
        if *relevant {
            found += 1;
            points.push((
                found as f64 / total_relevant as f64,
                found as f64 / (rank + 1) as f64,
            ));
        }
    }
    for (li, level) in RECALL_LEVELS.iter().enumerate() {
        out[li] = points
            .iter()
            .filter(|(r, _)| *r >= *level - 1e-12)
            .map(|(_, p)| *p)
            .fold(0.0, f64::max);
    }
    out
}

/// Precision/recall/F1 summary of one sub-experiment, macro-averaged over
/// subscriptions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Effectiveness {
    /// Mean interpolated precision per recall level.
    pub precision_at: [f64; 11],
    /// F1 per recall level (computed from the averaged precision).
    pub f1_at: [f64; 11],
    /// The maximal F1 over the 11 levels — the paper's headline metric.
    pub max_f1: f64,
    /// Number of subscriptions that had at least one relevant event.
    pub evaluated_subscriptions: usize,
}

/// Computes the sub-experiment effectiveness from per-subscription ranked
/// relevance lists.
///
/// "Precision and recall are calculated for the whole set of
/// subscriptions by averaging ... F1Score is computed at 11 recall points
/// ... and the maximal F1Score is then used" (§5.1). Subscriptions with
/// no relevant events are excluded from the average (their precision is
/// undefined).
pub fn effectiveness(rankings: &[(Vec<bool>, usize)]) -> Effectiveness {
    let mut precision_at = [0.0f64; 11];
    let mut evaluated = 0usize;
    for (ranked, total_relevant) in rankings {
        if *total_relevant == 0 {
            continue;
        }
        evaluated += 1;
        let p = interpolated_precision(ranked, *total_relevant);
        for i in 0..11 {
            precision_at[i] += p[i];
        }
    }
    if evaluated > 0 {
        for p in &mut precision_at {
            *p /= evaluated as f64;
        }
    }
    let mut f1_at = [0.0f64; 11];
    for (i, level) in RECALL_LEVELS.iter().enumerate() {
        f1_at[i] = f1(precision_at[i], *level);
    }
    let max_f1 = f1_at.iter().copied().fold(0.0, f64::max);
    Effectiveness {
        precision_at,
        f1_at,
        max_f1,
        evaluated_subscriptions: evaluated,
    }
}

/// Micro-averaged precision/recall/F1 of *thresholded* match decisions.
///
/// Where [`Effectiveness`] ranks results and interpolates (the paper's
/// offline methodology), this scores the broker's operational behavior:
/// each subscription × event pair is a binary deliver/suppress decision
/// at a fixed threshold, pooled into one confusion matrix. This is the
/// population quantity the broker's live shadow sampler estimates, so
/// the two are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdedEffectiveness {
    /// Delivered and relevant.
    pub true_positives: u64,
    /// Delivered but not relevant.
    pub false_positives: u64,
    /// Relevant but suppressed.
    pub false_negatives: u64,
    /// Correctly suppressed.
    pub true_negatives: u64,
    /// tp / (tp + fp); 0 when nothing was delivered.
    pub precision: f64,
    /// tp / (tp + fn); 0 when nothing was relevant.
    pub recall: f64,
    /// Harmonic mean of the micro precision and recall.
    pub f1: f64,
}

/// Pools `(predicted, relevant)` decision pairs into a micro-averaged
/// [`ThresholdedEffectiveness`].
pub fn thresholded_effectiveness(
    decisions: impl IntoIterator<Item = (bool, bool)>,
) -> ThresholdedEffectiveness {
    let (mut tp, mut fp, mut fn_, mut tn) = (0u64, 0u64, 0u64, 0u64);
    for (predicted, relevant) in decisions {
        match (predicted, relevant) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    ThresholdedEffectiveness {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        true_negatives: tn,
        precision,
        recall,
        f1: f1(precision, recall),
    }
}

/// The harmonic mean of precision and recall; 0 when both are 0.
pub fn f1(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Throughput in events per second (§5.1).
pub fn throughput(num_events: usize, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        num_events as f64 / secs
    }
}

/// Mean of a sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// values. The paper's "sample error" of Figures 8 and 10.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_perfect_precision() {
        let p = interpolated_precision(&[true, true, false, false], 2);
        for v in p {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn worst_ranking_degrades_precision() {
        // Relevant items at the very end of the list.
        let p = interpolated_precision(&[false, false, true, true], 2);
        assert!((p[10] - 0.5).abs() < 1e-12); // 2 relevant in 4 retrieved
        assert!((p[0] - 0.5).abs() < 1e-12); // interpolation carries the max back
    }

    #[test]
    fn unreached_recall_levels_have_zero_precision() {
        // Only 1 of 4 relevant events retrieved → recall caps at 0.25.
        let p = interpolated_precision(&[true], 4);
        assert_eq!(p[0], 1.0);
        assert_eq!(p[2], 1.0); // level 0.2 ≤ 0.25
        assert_eq!(p[3], 0.0); // level 0.3 unreachable
        assert_eq!(p[10], 0.0);
    }

    #[test]
    fn zero_relevant_is_all_zero() {
        assert_eq!(interpolated_precision(&[false, false], 0), [0.0; 11]);
    }

    #[test]
    fn interpolated_precision_is_monotone_nonincreasing() {
        let ranked = [true, false, true, false, false, true, false, true];
        let p = interpolated_precision(&ranked, 4);
        for w in p.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn effectiveness_macro_averages() {
        // One perfect subscription, one that never retrieves anything.
        let rankings = vec![(vec![true, true], 2), (vec![false, false], 2)];
        let e = effectiveness(&rankings);
        assert_eq!(e.evaluated_subscriptions, 2);
        assert!((e.precision_at[10] - 0.5).abs() < 1e-12);
        // Max F1 at recall 1.0 with precision 0.5 → 2·0.5·1/(1.5) = 2/3.
        assert!((e.max_f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn effectiveness_skips_empty_ground_truth() {
        let rankings = vec![(vec![true], 1), (vec![], 0)];
        let e = effectiveness(&rankings);
        assert_eq!(e.evaluated_subscriptions, 1);
        assert_eq!(e.max_f1, 1.0);
    }

    #[test]
    fn f1_edge_cases() {
        assert_eq!(f1(0.0, 0.0), 0.0);
        assert_eq!(f1(1.0, 1.0), 1.0);
        assert!((f1(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn thresholded_effectiveness_pools_decisions() {
        // 2 tp, 1 fp, 1 fn, 2 tn → P = 2/3, R = 2/3, F1 = 2/3.
        let e = thresholded_effectiveness([
            (true, true),
            (true, true),
            (true, false),
            (false, true),
            (false, false),
            (false, false),
        ]);
        assert_eq!(e.true_positives, 2);
        assert_eq!(e.false_positives, 1);
        assert_eq!(e.false_negatives, 1);
        assert_eq!(e.true_negatives, 2);
        assert!((e.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.f1 - 2.0 / 3.0).abs() < 1e-12);
        let empty = thresholded_effectiveness([]);
        assert_eq!(empty.f1, 0.0);
    }

    #[test]
    fn throughput_division() {
        let t = throughput(500, std::time::Duration::from_secs(1));
        assert_eq!(t, 500.0);
        assert_eq!(throughput(500, std::time::Duration::ZERO), 0.0);
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
