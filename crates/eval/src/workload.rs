//! The complete evaluation workload (Fig. 6, left column).

use crate::expansion::Expander;
use crate::ground_truth::GroundTruth;
use crate::seed::SeedGenerator;
use crate::subscriptions::{approximate_all, SubscriptionGenerator};
use crate::EvalConfig;
use tep_events::{Event, Subscription};
use tep_thesaurus::Thesaurus;

/// Everything the experiments need: seed events, the expanded
/// heterogeneous event set (with provenance), the exact and approximate
/// subscription sets, and the relevance ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    seeds: Vec<Event>,
    events: Vec<Event>,
    provenance: Vec<usize>,
    exact_subscriptions: Vec<Subscription>,
    subscriptions: Vec<Subscription>,
    ground_truth: GroundTruth,
    config: EvalConfig,
}

impl Workload {
    /// Generates the workload from the built-in thesaurus.
    pub fn generate(config: &EvalConfig) -> Workload {
        Workload::generate_with(&Thesaurus::eurovoc_like(), config)
    }

    /// Generates the workload from a caller-provided thesaurus.
    pub fn generate_with(thesaurus: &Thesaurus, config: &EvalConfig) -> Workload {
        let seeds = SeedGenerator::new(config).generate(config.num_seed_events);
        let (events, provenance) =
            Expander::new(thesaurus, config.seed).expand_all(&seeds, config.max_expanded_events);
        let exact_subscriptions = SubscriptionGenerator::new(config.seed).generate(
            &seeds,
            config.num_subscriptions,
            config.min_predicates,
            config.max_predicates,
        );
        let subscriptions = approximate_all(&exact_subscriptions);
        let ground_truth = GroundTruth::compute(&seeds, &exact_subscriptions, &provenance);
        Workload {
            seeds,
            events,
            provenance,
            exact_subscriptions,
            subscriptions,
            ground_truth,
            config: config.clone(),
        }
    }

    /// The seed events (§5.2.1).
    pub fn seeds(&self) -> &[Event] {
        &self.seeds
    }

    /// The expanded heterogeneous event set (§5.2.2).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The provenance seed index of each expanded event.
    pub fn provenance(&self) -> &[usize] {
        &self.provenance
    }

    /// The exact (0% approximation) subscriptions.
    pub fn exact_subscriptions(&self) -> &[Subscription] {
        &self.exact_subscriptions
    }

    /// The approximate (100% approximation) subscriptions the experiments
    /// run with (§5.2.3).
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.subscriptions
    }

    /// The relevance ground truth.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// The generating configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Returns a copy with a different subscription set and matching
    /// ground truth (used by the §5.1 prior-work experiment, which sweeps
    /// subscription-set sizes and degrees of approximation over the same
    /// event set).
    pub fn with_subscriptions(
        &self,
        exact: Vec<Subscription>,
        approximate: Vec<Subscription>,
        ground_truth: GroundTruth,
    ) -> Workload {
        assert_eq!(exact.len(), approximate.len());
        assert_eq!(ground_truth.len(), exact.len());
        Workload {
            seeds: self.seeds.clone(),
            events: self.events.clone(),
            provenance: self.provenance.clone(),
            exact_subscriptions: exact,
            subscriptions: approximate,
            ground_truth,
            config: self.config.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_config() {
        let cfg = EvalConfig::tiny();
        let w = Workload::generate(&cfg);
        assert_eq!(w.seeds().len(), cfg.num_seed_events);
        assert_eq!(w.events().len(), cfg.max_expanded_events);
        assert_eq!(w.subscriptions().len(), cfg.num_subscriptions);
        assert_eq!(w.exact_subscriptions().len(), cfg.num_subscriptions);
        assert_eq!(w.provenance().len(), w.events().len());
        assert_eq!(w.ground_truth().len(), cfg.num_subscriptions);
    }

    #[test]
    fn every_subscription_has_relevant_events() {
        // By construction each subscription is drawn from a seed that is
        // itself in the event set.
        let w = Workload::generate(&EvalConfig::tiny());
        for s in 0..w.subscriptions().len() {
            assert!(
                w.ground_truth().relevant_count(s) > 0,
                "subscription {s} has no relevant events"
            );
        }
    }

    #[test]
    fn subscriptions_are_fully_approximate() {
        let w = Workload::generate(&EvalConfig::tiny());
        assert!(w
            .subscriptions()
            .iter()
            .all(Subscription::is_fully_approximate));
        assert!(w
            .exact_subscriptions()
            .iter()
            .all(|s| s.degree_of_approximation().as_fraction() == 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&EvalConfig::tiny());
        let b = Workload::generate(&EvalConfig::tiny());
        assert_eq!(a.events(), b.events());
        assert_eq!(a.subscriptions(), b.subscriptions());
    }
}
