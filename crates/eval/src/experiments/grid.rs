//! The theme-size grid behind Figures 7–10.

use crate::metrics::{mean, std_dev};
use crate::runner::{run_sub_experiment, MatcherStack, SubExperimentResult};
use crate::themes::ThemeSampler;
use crate::Workload;
use serde::{Deserialize, Serialize};

/// One cell of the grid: a fixed (event-theme-size, subscription-theme-
/// size) pair, aggregated over `samples` random tag combinations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Event theme size (the paper's x-axis).
    pub event_theme_size: usize,
    /// Subscription theme size (the paper's y-axis).
    pub subscription_theme_size: usize,
    /// Mean maximal F1 over the samples (Fig. 7).
    pub f1_mean: f64,
    /// F1 standard deviation (Fig. 8).
    pub f1_std: f64,
    /// Mean throughput in events/sec (Fig. 9).
    pub throughput_mean: f64,
    /// Throughput standard deviation (Fig. 10).
    pub throughput_std: f64,
    /// Individual sample F1 values.
    pub f1_samples: Vec<f64>,
    /// Individual sample throughput values.
    pub throughput_samples: Vec<f64>,
}

/// The full grid plus the baseline it is compared against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridReport {
    /// All cells, row-major by (subscription size, event size).
    pub cells: Vec<GridCell>,
    /// The event-theme sizes swept (columns).
    pub event_sizes: Vec<usize>,
    /// The subscription-theme sizes swept (rows).
    pub subscription_sizes: Vec<usize>,
    /// Samples per cell.
    pub samples_per_cell: usize,
}

impl GridReport {
    /// The cell at `(event_size, subscription_size)`, if swept.
    pub fn cell(&self, event_size: usize, subscription_size: usize) -> Option<&GridCell> {
        self.cells.iter().find(|c| {
            c.event_theme_size == event_size && c.subscription_theme_size == subscription_size
        })
    }

    /// Mean F1 across all cells.
    pub fn mean_f1(&self) -> f64 {
        mean(&self.cells.iter().map(|c| c.f1_mean).collect::<Vec<_>>())
    }

    /// Mean throughput across all cells.
    pub fn mean_throughput(&self) -> f64 {
        mean(
            &self
                .cells
                .iter()
                .map(|c| c.throughput_mean)
                .collect::<Vec<_>>(),
        )
    }

    /// Fraction of cells whose mean F1 exceeds `baseline_f1` (the paper
    /// reports >70% of combinations beating the 62% baseline).
    pub fn fraction_above_f1(&self, baseline_f1: f64) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .filter(|c| c.f1_mean > baseline_f1)
            .count() as f64
            / self.cells.len() as f64
    }

    /// Fraction of cells whose mean throughput exceeds `baseline_tput`
    /// (the paper reports >92%).
    pub fn fraction_above_throughput(&self, baseline_tput: f64) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .filter(|c| c.throughput_mean > baseline_tput)
            .count() as f64
            / self.cells.len() as f64
    }

    /// Mean F1 over the diagonal cells (equal theme sizes) — the paper
    /// discusses the diagonal separately (§5.3.1–5.3.2).
    pub fn diagonal_f1(&self) -> f64 {
        let diag: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.event_theme_size == c.subscription_theme_size)
            .map(|c| c.f1_mean)
            .collect();
        mean(&diag)
    }
}

/// Progress callback invoked after each finished cell.
pub type ProgressFn<'p> = dyn FnMut(&GridCell) + 'p;

/// Runs the thematic matcher over every (event-size × subscription-size)
/// combination of the config's sweeps with `samples_per_cell` random tag
/// samples each — the paper's 30 × 30 × 5 = 4,500 sub-experiments.
///
/// `progress` (optional) is called after each cell, letting the harness
/// stream partial results.
pub fn run_grid(
    stack: &MatcherStack,
    workload: &Workload,
    mut progress: Option<&mut ProgressFn<'_>>,
) -> GridReport {
    let cfg = workload.config();
    let mut sampler = ThemeSampler::new(stack.thesaurus(), cfg.seed);
    let matcher = stack.thematic();
    let mut cells = Vec::new();
    for &ss in &cfg.subscription_theme_sizes {
        for &es in &cfg.event_theme_sizes {
            let mut f1_samples = Vec::with_capacity(cfg.samples_per_cell);
            let mut tput_samples = Vec::with_capacity(cfg.samples_per_cell);
            for _ in 0..cfg.samples_per_cell {
                let combo = sampler.sample(es, ss);
                let r: SubExperimentResult = run_sub_experiment(&matcher, workload, &combo);
                f1_samples.push(r.f1());
                tput_samples.push(r.throughput);
                // Bound memory across thousands of sub-experiments.
                stack.clear_caches();
            }
            let cell = GridCell {
                event_theme_size: es,
                subscription_theme_size: ss,
                f1_mean: mean(&f1_samples),
                f1_std: std_dev(&f1_samples),
                throughput_mean: mean(&tput_samples),
                throughput_std: std_dev(&tput_samples),
                f1_samples,
                throughput_samples: tput_samples,
            };
            if let Some(cb) = progress.as_deref_mut() {
                cb(&cell);
            }
            cells.push(cell);
        }
    }
    GridReport {
        cells,
        event_sizes: cfg.event_theme_sizes.clone(),
        subscription_sizes: cfg.subscription_theme_sizes.clone(),
        samples_per_cell: cfg.samples_per_cell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvalConfig;

    #[test]
    fn grid_covers_all_cells() {
        let cfg = EvalConfig::tiny();
        let stack = MatcherStack::build(&cfg);
        let workload = Workload::generate(&cfg);
        let mut seen = 0usize;
        let mut cb = |_: &GridCell| seen += 1;
        let report = run_grid(&stack, &workload, Some(&mut cb));
        let expected = cfg.event_theme_sizes.len() * cfg.subscription_theme_sizes.len();
        assert_eq!(report.cells.len(), expected);
        assert_eq!(seen, expected);
        for c in &report.cells {
            assert_eq!(c.f1_samples.len(), cfg.samples_per_cell);
            assert!((0.0..=1.0).contains(&c.f1_mean));
            assert!(c.throughput_mean > 0.0);
        }
        assert!(report.cell(2, 6).is_some());
        assert!(report.cell(4, 4).is_none());
        assert!(report.mean_f1() >= 0.0);
        assert!(report.mean_throughput() > 0.0);
        assert!((0.0..=1.0).contains(&report.fraction_above_f1(0.5)));
    }
}
