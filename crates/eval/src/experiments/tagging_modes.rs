//! Loose agreement vs free tagging — the two coupling modes of §2.3:
//!
//! * **loose coupling mode**: producers and consumers lightly agree on
//!   tags, guaranteeing containment between event and subscription themes
//!   (the evaluation grid's sampling);
//! * **no coupling mode**: both sides pick tags independently;
//!   "containment and overlap can be assumed to hold due to the
//!   distribution of term usage by humans" (§5.3.3) — but only
//!   statistically.
//!
//! This experiment quantifies the price of dropping the agreement, per
//! theme size.

use crate::metrics::{mean, std_dev};
use crate::runner::{run_sub_experiment, MatcherStack};
use crate::themes::ThemeSampler;
use crate::Workload;
use serde::{Deserialize, Serialize};

/// One row: a theme size evaluated under both tagging modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggingModeRow {
    /// Tags per side (events and subscriptions use the same size).
    pub theme_size: usize,
    /// Mean F1 with containment (loose agreement).
    pub contained_f1: f64,
    /// F1 std-dev with containment.
    pub contained_f1_std: f64,
    /// Mean F1 with independent tags (no coupling).
    pub free_f1: f64,
    /// F1 std-dev with independent tags.
    pub free_f1_std: f64,
}

/// The tagging-mode comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggingModesReport {
    /// One row per swept theme size.
    pub rows: Vec<TaggingModeRow>,
    /// Samples per (size, mode) cell.
    pub samples: usize,
}

/// Compares loose agreement vs free tagging for the given theme sizes.
pub fn run_tagging_modes(
    stack: &MatcherStack,
    workload: &Workload,
    sizes: &[usize],
    samples: usize,
) -> TaggingModesReport {
    let cfg = workload.config();
    let mut sampler = ThemeSampler::new(stack.thesaurus(), cfg.seed);
    let matcher = stack.thematic();
    let mut rows = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut contained = Vec::with_capacity(samples);
        let mut free = Vec::with_capacity(samples);
        for _ in 0..samples.max(1) {
            let c = sampler.sample(size, size);
            contained.push(run_sub_experiment(&matcher, workload, &c).f1());
            stack.clear_caches();
            let f = sampler.sample_free(size, size);
            free.push(run_sub_experiment(&matcher, workload, &f).f1());
            stack.clear_caches();
        }
        rows.push(TaggingModeRow {
            theme_size: size,
            contained_f1: mean(&contained),
            contained_f1_std: std_dev(&contained),
            free_f1: mean(&free),
            free_f1_std: std_dev(&free),
        });
    }
    TaggingModesReport {
        rows,
        samples: samples.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvalConfig;

    #[test]
    fn report_covers_requested_sizes() {
        let cfg = EvalConfig::tiny();
        let stack = MatcherStack::build(&cfg);
        let workload = Workload::generate(&cfg);
        let r = run_tagging_modes(&stack, &workload, &[2, 6], 2);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.contained_f1));
            assert!((0.0..=1.0).contains(&row.free_f1));
        }
        // With a large shared tag vocabulary, independent sampling of
        // many tags overlaps heavily: at size 6+ both modes should be in
        // the same ballpark.
        let big = &r.rows[1];
        assert!((big.contained_f1 - big.free_f1).abs() < 0.35);
    }
}
