//! The paper's experiments (§5.3): one module per reported artifact.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`grid`] | Figures 7–10 (effectiveness/throughput heatmaps and their sample errors) |
//! | [`baseline`] | §5.2.5 non-thematic baseline (62% F1, 202 events/sec) |
//! | [`table1`] | Table 1, quantified: all four approaches on one workload |
//! | [`prior_work`] | §5.1 prior-work comparison (50% approximation; precomputed vs rewriting throughput) |
//! | [`cold_start`] | §7 future work: warm-up behaviour after a restart |
//! | [`tagging_modes`] | §2.3/§5.3.3: loose agreement vs free tagging |

pub mod baseline;
pub mod cold_start;
pub mod grid;
pub mod prior_work;
pub mod table1;
pub mod tagging_modes;

pub use baseline::{run_baseline, BaselineReport};
pub use cold_start::{run_cold_start, ColdStartReport};
pub use grid::{run_grid, GridCell, GridReport};
pub use prior_work::{run_prior_work, PriorWorkReport};
pub use table1::{run_table1, Table1Report, Table1Row};
pub use tagging_modes::{run_tagging_modes, TaggingModeRow, TaggingModesReport};
