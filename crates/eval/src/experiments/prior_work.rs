//! The §5.1 prior-work experiment: approximate matching vs concept-based
//! query rewriting at 50% degree of approximation.
//!
//! The paper reports (from \[16\]): approximate matching 94–97% F1 vs
//! 89–92% for WordNet rewriting, across 10 sets of 10–100 subscriptions at
//! 50% approximation; and, for throughput, ~91,000 events/sec with
//! precomputed ESA scores vs ~19,100 events/sec for rewriting.
//!
//! The rewriting baseline's gap comes from **knowledge-base
//! incompleteness** (WordNet does not contain every EuroVoc link). We
//! reproduce that cause directly: the rewriting matcher is given a
//! *subsampled* thesaurus (a fraction of synonym/related links removed),
//! while the approximate matcher's corpus was generated from the full
//! one.

use crate::metrics::{mean, std_dev};
use crate::runner::{run_sub_experiment, MatcherStack};
use crate::subscriptions::SubscriptionGenerator;
use crate::themes::ThemeCombination;
use crate::{EvalConfig, GroundTruth, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tep_events::{Predicate, Subscription};
use tep_matcher::RewritingMatcher;

/// Fraction of thesaurus links the rewriting knowledge base keeps
/// (modelling the WordNet-vs-EuroVoc coverage gap).
pub const REWRITING_KB_COVERAGE: f64 = 0.75;

/// Results of the prior-work comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorWorkReport {
    /// Mean F1 of the approximate (non-thematic ESA) matcher.
    pub approximate_f1: f64,
    /// F1 standard deviation across subscription sets.
    pub approximate_f1_std: f64,
    /// Mean F1 of the rewriting matcher.
    pub rewriting_f1: f64,
    /// F1 standard deviation across subscription sets.
    pub rewriting_f1_std: f64,
    /// Throughput of the precomputed-scores approximate matcher.
    pub precomputed_throughput: f64,
    /// Throughput of the rewriting matcher.
    pub rewriting_throughput: f64,
    /// Number of subscription sets evaluated.
    pub sets: usize,
}

/// Applies a 50% degree of approximation: exactly half of each
/// subscription's attribute/value slots (rounded up) get the `~` operator,
/// chosen at random.
pub fn approximate_half(subscription: &Subscription, rng: &mut SmallRng) -> Subscription {
    let n = subscription.predicates().len();
    let total_slots = n * 2;
    let relax = total_slots.div_ceil(2);
    let mut slots: Vec<usize> = (0..total_slots).collect();
    for i in 0..relax {
        let j = rng.gen_range(i..slots.len());
        slots.swap(i, j);
    }
    let relaxed: Vec<usize> = slots[..relax].to_vec();
    let mut builder = Subscription::builder().theme_tags(subscription.theme_tags());
    for (i, p) in subscription.predicates().iter().enumerate() {
        let mut np = Predicate::new(p.attribute(), p.value());
        if relaxed.contains(&(2 * i)) {
            np = np.approx_attribute();
        }
        if relaxed.contains(&(2 * i + 1)) {
            np = np.approx_value();
        }
        builder = builder.predicate(np);
    }
    builder.build().expect("approximation preserves invariants")
}

/// Runs the §5.1 experiment over `sets` subscription sets of increasing
/// size (10, 20, … following the paper's 10–100 pattern scaled to the
/// workload).
pub fn run_prior_work(stack: &MatcherStack, workload: &Workload, sets: usize) -> PriorWorkReport {
    let cfg: &EvalConfig = workload.config();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_0005);
    let degraded = Arc::new(stack.thesaurus().subsample(REWRITING_KB_COVERAGE, cfg.seed));
    let rewriting = RewritingMatcher::new(degraded);
    let approximate = stack.non_thematic();
    let no_theme = ThemeCombination {
        event_tags: Vec::new(),
        subscription_tags: Vec::new(),
    };

    let mut approx_f1 = Vec::with_capacity(sets);
    let mut rewrite_f1 = Vec::with_capacity(sets);
    for set_idx in 0..sets.max(1) {
        // Paper: sets of 10..=100 subscriptions; scale to the workload.
        let count = ((set_idx + 1) * cfg.num_subscriptions / sets.max(1)).max(2);
        let exact = SubscriptionGenerator::new(cfg.seed ^ (set_idx as u64 + 1)).generate(
            workload.seeds(),
            count,
            cfg.min_predicates,
            cfg.max_predicates,
        );
        let half: Vec<Subscription> = exact
            .iter()
            .map(|s| approximate_half(s, &mut rng))
            .collect();
        let gt = GroundTruth::compute(workload.seeds(), &exact, workload.provenance());
        let sub_workload = workload.with_subscriptions(exact, half, gt);
        approx_f1.push(run_sub_experiment(&approximate, &sub_workload, &no_theme).f1());
        rewrite_f1.push(run_sub_experiment(&rewriting, &sub_workload, &no_theme).f1());
    }

    // Throughput: full workload, precomputed scores vs rewriting.
    let precomputed = stack.precomputed(workload);
    let pre = run_sub_experiment(&precomputed, workload, &no_theme);
    let rew = run_sub_experiment(&rewriting, workload, &no_theme);

    PriorWorkReport {
        approximate_f1: mean(&approx_f1),
        approximate_f1_std: std_dev(&approx_f1),
        rewriting_f1: mean(&rewrite_f1),
        rewriting_f1_std: std_dev(&rewrite_f1),
        precomputed_throughput: pre.throughput,
        rewriting_throughput: rew.throughput,
        sets: sets.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximate_half_relaxes_half_the_slots() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = Subscription::builder()
            .predicate_exact("a", "1")
            .predicate_exact("b", "2")
            .predicate_exact("c", "3")
            .build()
            .unwrap();
        let half = approximate_half(&s, &mut rng);
        let d = half.degree_of_approximation();
        assert_eq!(d.relaxed(), 3); // ceil(6/2)
        assert_eq!(d.total(), 6);
    }

    #[test]
    fn prior_work_report_shape() {
        let cfg = EvalConfig::tiny();
        let stack = MatcherStack::build(&cfg);
        let workload = Workload::generate(&cfg);
        let r = run_prior_work(&stack, &workload, 3);
        assert_eq!(r.sets, 3);
        assert!(r.approximate_f1 > 0.0);
        assert!(r.rewriting_f1 > 0.0);
        assert!(r.precomputed_throughput > 0.0);
        assert!(r.rewriting_throughput > 0.0);
        // The core §5.1 claim: approximate matching beats rewriting with
        // an incomplete knowledge base.
        assert!(
            r.approximate_f1 >= r.rewriting_f1,
            "approximate {} !>= rewriting {}",
            r.approximate_f1,
            r.rewriting_f1
        );
    }
}
