//! Cold-start behaviour — one of the open questions the paper's §7 lists
//! ("more quantitative aspects of evaluation such as cold start and
//! real-time behavior").
//!
//! The thematic matcher's throughput depends on memoized theme bases and
//! projections; a broker that has just (re)started serves its first
//! events from empty caches. This experiment measures the cost of that
//! warm-up: throughput over successive batches of the same sub-experiment
//! with caches cleared only before the first batch.

use crate::metrics;
use crate::runner::MatcherStack;
use crate::themes::ThemeSampler;
use crate::Workload;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use tep_matcher::Matcher;

/// Throughput of each successive batch after a cold start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdStartReport {
    /// Events per batch.
    pub batch_size: usize,
    /// Per-batch throughput (events/sec), first batch = cold.
    pub batch_throughput: Vec<f64>,
    /// Warm/cold speedup: last batch over first batch.
    pub warmup_speedup: f64,
}

/// Runs `batches` batches of `batch_size` events against all
/// subscriptions, clearing the PVSM caches only before the first batch.
pub fn run_cold_start(
    stack: &MatcherStack,
    workload: &Workload,
    batch_size: usize,
    batches: usize,
) -> ColdStartReport {
    let cfg = workload.config();
    let mut sampler = ThemeSampler::new(stack.thesaurus(), cfg.seed);
    let combo = sampler.sample(4, 10);
    let matcher = stack.thematic();
    let subscriptions: Vec<_> = workload
        .subscriptions()
        .iter()
        .map(|s| s.with_theme_tags(combo.subscription_tags.clone()))
        .collect();
    let events: Vec<_> = workload
        .events()
        .iter()
        .map(|e| e.with_theme_tags(combo.event_tags.clone()))
        .collect();

    stack.clear_caches();
    let mut batch_throughput = Vec::with_capacity(batches);
    for b in 0..batches.max(1) {
        let start = b * batch_size;
        let batch: Vec<_> = events.iter().cycle().skip(start).take(batch_size).collect();
        let t = Instant::now();
        for sub in &subscriptions {
            for e in &batch {
                let _ = matcher.match_event(sub, e).score();
            }
        }
        batch_throughput.push(metrics::throughput(batch.len(), t.elapsed()));
    }
    let warmup_speedup = if batch_throughput.first().copied().unwrap_or(0.0) > 0.0 {
        batch_throughput.last().copied().unwrap_or(0.0) / batch_throughput[0]
    } else {
        0.0
    };
    ColdStartReport {
        batch_size,
        batch_throughput,
        warmup_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvalConfig;

    #[test]
    fn warm_batches_are_not_slower_than_cold() {
        let cfg = EvalConfig::tiny();
        let stack = MatcherStack::build(&cfg);
        let workload = Workload::generate(&cfg);
        let r = run_cold_start(&stack, &workload, 40, 3);
        assert_eq!(r.batch_throughput.len(), 3);
        assert!(r.batch_throughput.iter().all(|t| *t > 0.0));
        // Warm-up must not make things slower; tolerate timing noise.
        assert!(
            r.warmup_speedup > 0.5,
            "warm batch unexpectedly slow: speedup {}",
            r.warmup_speedup
        );
    }
}
