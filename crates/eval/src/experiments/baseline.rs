//! The §5.2.5 baseline: the non-thematic approximate matcher on the
//! thematic workload.

use crate::metrics::{mean, std_dev};
use crate::runner::{run_sub_experiment, MatcherStack};
use crate::themes::ThemeCombination;
use crate::Workload;
use serde::{Deserialize, Serialize};

/// The baseline report: F1 and throughput of the non-thematic matcher,
/// averaged over several runs (the paper averages 5 runs and reports 62%
/// F1 at 202 events/sec).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Mean maximal F1 across runs.
    pub f1: f64,
    /// F1 standard deviation across runs.
    pub f1_std: f64,
    /// Mean throughput (events/sec).
    pub throughput: f64,
    /// Throughput standard deviation.
    pub throughput_std: f64,
    /// Number of runs averaged.
    pub runs: usize,
}

/// Runs the non-thematic matcher `runs` times with no theme tags.
///
/// F1 is deterministic given the workload (the matcher has no randomness);
/// throughput varies run to run, which is what the multiple runs capture.
pub fn run_baseline(stack: &MatcherStack, workload: &Workload, runs: usize) -> BaselineReport {
    let matcher = stack.non_thematic();
    let combo = ThemeCombination {
        event_tags: Vec::new(),
        subscription_tags: Vec::new(),
    };
    let mut f1s = Vec::with_capacity(runs);
    let mut tputs = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let r = run_sub_experiment(&matcher, workload, &combo);
        f1s.push(r.f1());
        tputs.push(r.throughput);
    }
    BaselineReport {
        f1: mean(&f1s),
        f1_std: std_dev(&f1s),
        throughput: mean(&tputs),
        throughput_std: std_dev(&tputs),
        runs: runs.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvalConfig;

    #[test]
    fn baseline_runs_and_reports() {
        let cfg = EvalConfig::tiny();
        let stack = MatcherStack::build(&cfg);
        let workload = Workload::generate(&cfg);
        let r = run_baseline(&stack, &workload, 2);
        assert_eq!(r.runs, 2);
        assert!(r.f1 > 0.0 && r.f1 <= 1.0);
        assert!(r.throughput > 0.0);
        // F1 is deterministic across runs.
        assert!(r.f1_std < 1e-9);
    }
}
