//! Table 1, quantified: all four approaches on the same workload.

use crate::runner::{run_sub_experiment, MatcherStack};
use crate::themes::{ThemeCombination, ThemeSampler};
use crate::Workload;
use serde::{Deserialize, Serialize};
use tep_matcher::Matcher;

/// One row of the quantified Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Approach name (Table 1 column heading).
    pub approach: String,
    /// Maximal F1 on the heterogeneous 100%-approximation workload.
    pub f1: f64,
    /// Throughput in events/sec.
    pub throughput: f64,
}

/// The quantified Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// One row per approach, in the paper's column order.
    pub rows: Vec<Table1Row>,
    /// The theme combination used for the thematic row.
    pub thematic_combination: ThemeCombination,
}

impl Table1Report {
    /// The row for `approach`, if present.
    pub fn row(&self, approach: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.approach == approach)
    }
}

/// Runs the four approaches of Table 1 on the same workload:
/// content-based (exact), concept-based (rewriting), approximate
/// non-thematic, and the proposed thematic matcher (with a mid-grid theme
/// combination: a few event tags contained in a larger subscription theme,
/// the §5.3.3 recommended operating point).
pub fn run_table1(stack: &MatcherStack, workload: &Workload) -> Table1Report {
    let cfg = workload.config();
    let mut sampler = ThemeSampler::new(stack.thesaurus(), cfg.seed);
    // §5.3.3: "less terms to describe events, around 2–7, and more to
    // describe subscriptions, around 2–15". One sample is reported in the
    // table; the thematic row averages three to avoid a lucky/unlucky
    // draw.
    let thematic_samples: Vec<ThemeCombination> = (0..3).map(|_| sampler.sample(4, 12)).collect();
    let thematic_combination = thematic_samples[0].clone();
    let no_theme = ThemeCombination {
        event_tags: Vec::new(),
        subscription_tags: Vec::new(),
    };

    let mut rows = Vec::new();
    let exact = stack.exact();
    // Like §5.1, the concept-based row uses an *incomplete* knowledge
    // base (the realistic condition: the ontology is built separately
    // from the event sources' vocabularies). With the oracle thesaurus —
    // the exact one the workload was expanded from — rewriting would be
    // near-perfect, which is precisely the unrealistic agreement the
    // paper argues cannot be assumed.
    let rewriting = tep_matcher::RewritingMatcher::new(std::sync::Arc::new(
        stack
            .thesaurus()
            .subsample(super::prior_work::REWRITING_KB_COVERAGE, cfg.seed),
    ));
    let non_thematic = stack.non_thematic();
    let thematic = stack.thematic();
    let entries: Vec<(&str, &dyn Matcher)> = vec![
        ("content-based", &exact),
        ("concept-based", &rewriting),
        ("approximate non-thematic", &non_thematic),
    ];
    for (name, matcher) in entries {
        let r = run_sub_experiment(matcher, workload, &no_theme);
        rows.push(Table1Row {
            approach: name.to_string(),
            f1: r.f1(),
            throughput: r.throughput,
        });
        stack.clear_caches();
    }
    let mut f1_sum = 0.0;
    let mut tput_sum = 0.0;
    for combo in &thematic_samples {
        let r = run_sub_experiment(&thematic, workload, combo);
        f1_sum += r.f1();
        tput_sum += r.throughput;
        stack.clear_caches();
    }
    rows.push(Table1Row {
        approach: "thematic".to_string(),
        f1: f1_sum / thematic_samples.len() as f64,
        throughput: tput_sum / thematic_samples.len() as f64,
    });
    Table1Report {
        rows,
        thematic_combination,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvalConfig;

    #[test]
    fn table1_has_four_rows_with_expected_ordering() {
        let cfg = EvalConfig::tiny();
        let stack = MatcherStack::build(&cfg);
        let workload = Workload::generate(&cfg);
        let t = run_table1(&stack, &workload);
        assert_eq!(t.rows.len(), 4);
        let exact = t.row("content-based").unwrap();
        let thematic = t.row("thematic").unwrap();
        // Exact matching cannot reach the recall of the approximate
        // approaches on a 100%-heterogeneous workload: its F1 must be
        // below the thematic matcher's.
        assert!(
            exact.f1 < thematic.f1,
            "exact {} !< thematic {}",
            exact.f1,
            thematic.f1
        );
        // Exact matching is by far the fastest (string comparisons only).
        assert!(exact.throughput > thematic.throughput);
    }
}
