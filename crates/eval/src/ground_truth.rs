//! Relevance ground truth (paper §5.2.3).

use std::collections::HashSet;
use tep_events::{Event, Subscription};
use tep_matcher::{ExactMatcher, Matcher};

/// The relevance function between approximate subscriptions and expanded
/// events.
///
/// Per §5.2.3 it "is isomorphic to a basic exact ground truth function
/// between exact subscriptions and seed events": an expanded event is
/// relevant to an approximate subscription iff the seed event it was
/// derived from exactly matches the subscription's exact (pre-`~`)
/// version.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Per subscription: the set of relevant event indices.
    relevant: Vec<HashSet<usize>>,
}

impl GroundTruth {
    /// Computes the ground truth from the seed set, the exact
    /// subscriptions, and each event's provenance seed index.
    pub fn compute(
        seeds: &[Event],
        exact_subscriptions: &[Subscription],
        provenance: &[usize],
    ) -> GroundTruth {
        let matcher = ExactMatcher::new();
        // seed_matches[s] = seeds that exactly match subscription s.
        let seed_matches: Vec<HashSet<usize>> = exact_subscriptions
            .iter()
            .map(|sub| {
                seeds
                    .iter()
                    .enumerate()
                    .filter(|(_, seed)| !matcher.match_event(sub, seed).is_empty())
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        let relevant = seed_matches
            .into_iter()
            .map(|seed_set| {
                provenance
                    .iter()
                    .enumerate()
                    .filter(|(_, seed_idx)| seed_set.contains(seed_idx))
                    .map(|(event_idx, _)| event_idx)
                    .collect()
            })
            .collect();
        GroundTruth { relevant }
    }

    /// Whether `event_idx` is relevant to `subscription_idx`.
    pub fn is_relevant(&self, subscription_idx: usize, event_idx: usize) -> bool {
        self.relevant
            .get(subscription_idx)
            .is_some_and(|s| s.contains(&event_idx))
    }

    /// Number of events relevant to `subscription_idx`.
    pub fn relevant_count(&self, subscription_idx: usize) -> usize {
        self.relevant.get(subscription_idx).map_or(0, HashSet::len)
    }

    /// Number of subscriptions covered.
    pub fn len(&self) -> usize {
        self.relevant.len()
    }

    /// Whether no subscriptions are covered.
    pub fn is_empty(&self) -> bool {
        self.relevant.is_empty()
    }

    /// The relevant event indices of one subscription.
    pub fn relevant_events(&self, subscription_idx: usize) -> impl Iterator<Item = usize> + '_ {
        self.relevant
            .get(subscription_idx)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::Expander;
    use crate::subscriptions::SubscriptionGenerator;
    use crate::{EvalConfig, SeedGenerator};
    use tep_thesaurus::Thesaurus;

    #[test]
    fn seeds_of_origin_are_relevant() {
        let cfg = EvalConfig::tiny();
        let seeds = SeedGenerator::new(&cfg).generate(10);
        let exact = SubscriptionGenerator::new(cfg.seed).generate(&seeds, 10, 2, 3);
        let th = Thesaurus::eurovoc_like();
        let (_events, prov) = Expander::new(&th, cfg.seed).expand_all(&seeds, 60);
        let gt = GroundTruth::compute(&seeds, &exact, &prov);
        assert_eq!(gt.len(), 10);
        // Subscription i was drawn from seed i; the seed itself is event i
        // (seeds come first in expand_all), so it must be relevant.
        for i in 0..10 {
            assert!(gt.is_relevant(i, i), "subscription {i} missing its seed");
            assert!(gt.relevant_count(i) >= 1);
        }
    }

    #[test]
    fn expansions_inherit_seed_relevance() {
        let cfg = EvalConfig::tiny();
        let seeds = SeedGenerator::new(&cfg).generate(8);
        let exact = SubscriptionGenerator::new(cfg.seed).generate(&seeds, 8, 2, 3);
        let th = Thesaurus::eurovoc_like();
        let (_events, prov) = Expander::new(&th, cfg.seed).expand_all(&seeds, 80);
        let gt = GroundTruth::compute(&seeds, &exact, &prov);
        for s in 0..8 {
            for e in gt.relevant_events(s) {
                // Every relevant event's seed exactly matches the
                // subscription, by construction.
                assert!(
                    gt.is_relevant(s, prov[e]),
                    "provenance seed must be relevant too"
                );
            }
        }
    }

    #[test]
    fn out_of_range_queries_are_safe() {
        let gt = GroundTruth {
            relevant: vec![HashSet::from([1usize])],
        };
        assert!(gt.is_relevant(0, 1));
        assert!(!gt.is_relevant(5, 1));
        assert_eq!(gt.relevant_count(5), 0);
        assert!(!gt.is_empty());
    }
}
