//! A [`QualityOracle`] over the evaluation workload's ground truth, so
//! the broker's shadow quality sampler can judge live traffic against
//! the paper's relevance function (§5.2.3).
//!
//! The broker hands the oracle the *objects* it is matching, not
//! workload indices, so the oracle keys subscriptions by their rendered
//! predicates and events by their rendered tuples. The keys are
//! deliberately theme-tag-agnostic: benchmarks re-tag workload events
//! per scenario, and §5.2.3 relevance is a content property — themes
//! affect *how* matching approximates, not *what* is relevant. Renders
//! that collide — the semantic expansion can produce duplicate events —
//! are judged only when every colliding index agrees on relevance;
//! otherwise the pair is reported unknown rather than guessed.

use crate::metrics::{thresholded_effectiveness, ThresholdedEffectiveness};
use crate::workload::Workload;
use std::collections::HashMap;
use tep_broker::QualityOracle;
use tep_events::{Event, Subscription};
use tep_matcher::Matcher;

/// The theme-tag-agnostic content key of an event: its rendered tuples.
fn event_key(event: &Event) -> String {
    event
        .tuples()
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

/// The theme-tag-agnostic content key of a subscription: its rendered
/// predicates (approximation markers included).
fn subscription_key(subscription: &Subscription) -> String {
    subscription
        .predicates()
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

/// Ground truth for live quality sampling, built from a [`Workload`].
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    /// Subscription content key → workload subscription indices.
    subscriptions: HashMap<String, Vec<usize>>,
    /// Event content key → workload event indices.
    events: HashMap<String, Vec<usize>>,
    /// relevant[s] sorted event indices, borrowed from the ground truth.
    relevant: Vec<Vec<usize>>,
}

impl GroundTruthOracle {
    /// Indexes the workload's approximate subscriptions, expanded
    /// events, and ground truth for content-keyed lookup.
    pub fn from_workload(workload: &Workload) -> GroundTruthOracle {
        let mut subscriptions: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, sub) in workload.subscriptions().iter().enumerate() {
            subscriptions
                .entry(subscription_key(sub))
                .or_default()
                .push(i);
        }
        let mut events: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, event) in workload.events().iter().enumerate() {
            events.entry(event_key(event)).or_default().push(i);
        }
        let gt = workload.ground_truth();
        let relevant = (0..gt.len())
            .map(|s| {
                let mut r: Vec<usize> = gt.relevant_events(s).collect();
                r.sort_unstable();
                r
            })
            .collect();
        GroundTruthOracle {
            subscriptions,
            events,
            relevant,
        }
    }

    /// Number of distinct subscription renders indexed.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Number of distinct event renders indexed.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    fn is_relevant(&self, sub_idx: usize, event_idx: usize) -> bool {
        self.relevant
            .get(sub_idx)
            .is_some_and(|r| r.binary_search(&event_idx).is_ok())
    }
}

impl QualityOracle for GroundTruthOracle {
    fn judge(&self, subscription: &Subscription, event: &Event) -> Option<bool> {
        let subs = self.subscriptions.get(&subscription_key(subscription))?;
        let events = self.events.get(&event_key(event))?;
        // Colliding renders must agree, else the pair is unknowable.
        let mut verdict: Option<bool> = None;
        for s in subs {
            for e in events {
                let relevant = self.is_relevant(*s, *e);
                match verdict {
                    None => verdict = Some(relevant),
                    Some(v) if v != relevant => return None,
                    Some(_) => {}
                }
            }
        }
        verdict
    }
}

/// Replays every subscription × event pair of the workload through
/// `matcher` at `threshold` and pools the deliver/suppress decisions
/// against the ground truth — the exact population quantity the
/// broker's live shadow sampler estimates.
pub fn offline_effectiveness<M>(
    matcher: &M,
    workload: &Workload,
    threshold: f64,
) -> ThresholdedEffectiveness
where
    M: Matcher + ?Sized,
{
    for sub in workload.subscriptions() {
        matcher.prepare_subscription(sub);
    }
    let gt = workload.ground_truth();
    let decisions = workload
        .subscriptions()
        .iter()
        .enumerate()
        .flat_map(|(s, sub)| {
            workload.events().iter().enumerate().map(move |(e, event)| {
                let result = matcher.match_event(sub, event);
                let predicted = !result.is_empty() && result.is_match(threshold);
                (predicted, gt.is_relevant(s, e))
            })
        });
    thresholded_effectiveness(decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvalConfig;
    use tep_matcher::ExactMatcher;

    fn workload() -> Workload {
        Workload::generate(&EvalConfig::tiny())
    }

    #[test]
    fn oracle_judges_known_pairs() {
        let w = workload();
        let oracle = GroundTruthOracle::from_workload(&w);
        assert!(oracle.subscription_count() > 0);
        assert!(oracle.event_count() > 0);
        let gt = w.ground_truth();
        let mut judged = 0usize;
        for (s, sub) in w.subscriptions().iter().enumerate() {
            for (e, event) in w.events().iter().enumerate() {
                if let Some(verdict) = oracle.judge(sub, event) {
                    judged += 1;
                    // Unambiguous content keys must reproduce the ground
                    // truth.
                    if w.subscriptions()
                        .iter()
                        .filter(|o| subscription_key(o) == subscription_key(sub))
                        .count()
                        == 1
                        && w.events()
                            .iter()
                            .filter(|o| event_key(o) == event_key(event))
                            .count()
                            == 1
                    {
                        assert_eq!(verdict, gt.is_relevant(s, e));
                    }
                }
            }
        }
        assert!(judged > 0, "the oracle must judge the workload's own pairs");
    }

    #[test]
    fn judgment_ignores_theme_tags() {
        // Benchmarks re-tag workload events per scenario; the oracle's
        // verdict must not change when the tags do.
        let w = workload();
        let oracle = GroundTruthOracle::from_workload(&w);
        let sub = &w.subscriptions()[0];
        let mut checked = 0usize;
        for event in w.events().iter().take(16) {
            let retagged = event
                .clone()
                .with_theme_tags(vec!["synthetic".to_string(), "retag".to_string()]);
            assert_eq!(oracle.judge(sub, event), oracle.judge(sub, &retagged));
            if oracle.judge(sub, &retagged).is_some() {
                checked += 1;
            }
        }
        assert!(checked > 0, "at least one retagged pair must stay judged");
    }

    #[test]
    fn unknown_content_is_not_guessed() {
        let w = workload();
        let oracle = GroundTruthOracle::from_workload(&w);
        let foreign_event = tep_events::parse_event("{never_seen: nowhere}").unwrap();
        let sub = &w.subscriptions()[0];
        assert_eq!(oracle.judge(sub, &foreign_event), None);
        let foreign_sub = tep_events::parse_subscription("{never_seen= nowhere}").unwrap();
        let event = &w.events()[0];
        assert_eq!(oracle.judge(&foreign_sub, event), None);
    }

    #[test]
    fn offline_effectiveness_is_consistent() {
        let w = workload();
        // The exact matcher over approximate subscriptions delivers only
        // literal matches; the pooled confusion matrix must cover every
        // pair exactly once.
        let eff = offline_effectiveness(&ExactMatcher::new(), &w, 0.5);
        let pairs = (w.subscriptions().len() * w.events().len()) as u64;
        assert_eq!(
            eff.true_positives + eff.false_positives + eff.false_negatives + eff.true_negatives,
            pairs
        );
        assert!(eff.precision >= 0.0 && eff.precision <= 1.0);
        assert!(eff.f1 >= 0.0 && eff.f1 <= 1.0);
    }
}
