//! Seed-event synthesis (paper §5.2.1).

use crate::datasets::*;
use crate::EvalConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tep_events::Event;

/// Synthesizes the seed event set by randomly combining attributes and
/// values from the embedded datasets, exactly as §5.2.1 describes
/// ("seed event generation is done by randomly combining various
/// attributes and values from the aforementioned datasets").
///
/// Five templates cover the paper's sources: indoor energy events (LEI),
/// compute-node events, fixed outdoor city sensors and mobile vehicle
/// sensors (SmartSantander), and parking events (the §1 motivating
/// scenario). Every generated event follows the paper's example shape —
/// up to ~9 tuples ending in a location chain.
#[derive(Debug)]
pub struct SeedGenerator {
    rng: SmallRng,
}

impl SeedGenerator {
    /// Creates a generator from the evaluation seed.
    pub fn new(config: &EvalConfig) -> SeedGenerator {
        SeedGenerator {
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5EED_0001),
        }
    }

    /// Generates `count` seed events.
    pub fn generate(&mut self, count: usize) -> Vec<Event> {
        (0..count).map(|i| self.generate_one(i)).collect()
    }

    fn generate_one(&mut self, index: usize) -> Event {
        // Rotate templates so the seed set is evenly heterogeneous.
        match index % 5 {
            0 => self.energy_event(),
            1 => self.compute_event(),
            2 => self.outdoor_sensor_event(),
            3 => self.vehicle_sensor_event(),
            _ => self.parking_event(),
        }
    }

    fn pick<'d>(&mut self, list: &[&'d str]) -> &'d str {
        list[self.rng.gen_range(0..list.len())]
    }

    /// city → (country, continent) consistency.
    fn location_chain(&mut self) -> (&'static str, &'static str, &'static str) {
        let city = self.pick(CITIES);
        let country = match city {
            "santander" => "spain",
            "bordeaux" => "france",
            _ => "ireland",
        };
        (city, country, "europe")
    }

    /// LEI-style indoor energy event (the paper's running example).
    fn energy_event(&mut self) -> Event {
        let device = self.pick(APPLIANCES);
        let desk = self.pick(DESKS);
        let room = self.pick(ROOMS);
        let floor = self.pick(FLOORS);
        let (city, country, continent) = self.location_chain();
        Event::builder()
            .tuple("type", "increased energy consumption event")
            .tuple("measurement unit", self.pick(&["kilowatt hour", "watt"]))
            .tuple("device", device)
            .tuple("desk", desk)
            .tuple("room", room)
            .tuple("floor", floor)
            .tuple("zone", "building")
            .tuple("city", city)
            .tuple("country", country)
            .tuple("continent", continent)
            .build()
            .expect("energy seed template is well-formed")
    }

    /// Compute-node monitoring event (cpu/memory usage capabilities).
    fn compute_event(&mut self) -> Event {
        let capability = self.pick(&["cpu usage", "memory usage"]);
        let device = self.pick(&["computer", "server", "laptop", "router"]);
        let room = self.pick(ROOMS);
        let (city, country, continent) = self.location_chain();
        Event::builder()
            .tuple("type", &format!("increased {capability} event"))
            .tuple("measurement unit", "percent")
            .tuple("device", device)
            .tuple("room", room)
            .tuple("zone", "campus")
            .tuple("city", city)
            .tuple("country", country)
            .tuple("continent", continent)
            .build()
            .expect("compute seed template is well-formed")
    }

    /// Fixed outdoor SmartSantander sensor event.
    fn outdoor_sensor_event(&mut self) -> Event {
        let capability = self.pick(&[
            "solar radiation",
            "particles",
            "wind direction",
            "wind speed",
            "temperature",
            "water flow",
            "atmospheric pressure",
            "noise",
            "ozone",
            "rainfall",
            "radiation par",
            "co",
            "ground temperature",
            "light",
            "no2",
            "soil moisture tension",
            "relative humidity",
        ]);
        let unit = self.pick(MEASUREMENT_UNITS);
        let street = self.pick(STREETS);
        let zone = self.pick(ZONES);
        let (city, country, continent) = self.location_chain();
        Event::builder()
            .tuple("type", &format!("{capability} reading event"))
            .tuple("measurement unit", unit)
            .tuple("sensor", &format!("{capability} sensor"))
            .tuple("street", street)
            .tuple("zone", zone)
            .tuple("city", city)
            .tuple("country", country)
            .tuple("continent", continent)
            .build()
            .expect("outdoor seed template is well-formed")
    }

    /// Mobile sensor platform mounted on a vehicle.
    fn vehicle_sensor_event(&mut self) -> Event {
        let capability = self.pick(&["speed", "temperature", "no2", "co", "noise"]);
        let brand = self.pick(CAR_BRANDS);
        let street = self.pick(STREETS);
        let (city, country, continent) = self.location_chain();
        Event::builder()
            .tuple("type", &format!("{capability} reading event"))
            .tuple("platform", "vehicle")
            .tuple("brand", brand)
            .tuple("street", street)
            .tuple("city", city)
            .tuple("country", country)
            .tuple("continent", continent)
            .build()
            .expect("vehicle seed template is well-formed")
    }

    /// Parking event (the §1 'parking space occupied' scenario).
    fn parking_event(&mut self) -> Event {
        let street = self.pick(STREETS);
        let zone = self.pick(&["city centre", "harbour", "square", "district"]);
        let (city, country, continent) = self.location_chain();
        Event::builder()
            .tuple("type", "parking space occupied event")
            .tuple("sensor", "parking sensor")
            .tuple("street", street)
            .tuple("zone", zone)
            .tuple("city", city)
            .tuple("country", country)
            .tuple("continent", continent)
            .build()
            .expect("parking seed template is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(n: usize) -> Vec<Event> {
        SeedGenerator::new(&EvalConfig::tiny()).generate(n)
    }

    #[test]
    fn generates_requested_count() {
        assert_eq!(seeds(25).len(), 25);
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = seeds(10);
        let b = seeds(10);
        assert_eq!(a, b);
    }

    #[test]
    fn tuple_counts_match_paper_shape() {
        for e in seeds(30) {
            let n = e.tuples().len();
            assert!((7..=10).contains(&n), "seed has {n} tuples");
        }
    }

    #[test]
    fn location_chain_is_consistent() {
        for e in seeds(40) {
            let city = e.value_of("city").unwrap();
            let country = e.value_of("country").unwrap();
            match city {
                "santander" => assert_eq!(country, "spain"),
                "bordeaux" => assert_eq!(country, "france"),
                "galway" | "dublin" => assert_eq!(country, "ireland"),
                other => panic!("unexpected city {other}"),
            }
            assert_eq!(e.value_of("continent"), Some("europe"));
        }
    }

    #[test]
    fn all_five_templates_appear() {
        let all = seeds(10);
        let types: Vec<&str> = all.iter().map(|e| e.value_of("type").unwrap()).collect();
        assert!(types.iter().any(|t| t.contains("energy consumption")));
        assert!(types.iter().any(|t| t.contains("usage")));
        assert!(types.iter().any(|t| t.contains("reading")));
        assert!(types.iter().any(|t| t.contains("parking")));
    }

    #[test]
    fn seeds_carry_no_theme_tags() {
        // Themes are associated later, per sub-experiment (Fig. 6).
        assert!(seeds(10).iter().all(Event::is_non_thematic));
    }
}
