//! Hand-authored seed datasets (paper §5.2.1).
//!
//! The paper synthesizes its seed events from real-world datasets; these
//! constants reproduce their vocabulary:
//!
//! * [`SENSOR_CAPABILITIES`] — the exact Table 3 list (SmartSantander +
//!   Linked Energy Intelligence sensor capabilities);
//! * [`CAR_BRANDS`] — vehicle mobile sensor platforms (Yahoo! directory
//!   substitute);
//! * [`APPLIANCES`] — indoor platforms (BLUED dataset substitute);
//! * [`ROOMS`] / [`DESKS`] / [`FLOORS`] — DERI-building-style indoor
//!   locations;
//! * [`CITIES`] / [`ZONES`] — SmartSantander project locations plus Galway
//!   City.

/// The sensor capabilities of Table 3, verbatim.
pub const SENSOR_CAPABILITIES: &[&str] = &[
    "solar radiation",
    "particles",
    "speed",
    "wind direction",
    "wind speed",
    "temperature",
    "water flow",
    "atmospheric pressure",
    "noise",
    "ozone",
    "rainfall",
    "parking",
    "radiation par",
    "co",
    "ground temperature",
    "light",
    "no2",
    "soil moisture tension",
    "relative humidity",
    "energy consumption",
    "cpu usage",
    "memory usage",
];

/// Measurement units paired with capabilities where sensible.
pub const MEASUREMENT_UNITS: &[&str] = &[
    "kilowatt hour",
    "watt",
    "decibel",
    "degrees celsius",
    "lux",
    "millimetre",
    "percent",
    "hectopascal",
    "micrograms per cubic metre",
    "metres per second",
    "litres per second",
];

/// Vehicle brands for mobile sensor platforms.
pub const CAR_BRANDS: &[&str] = &[
    "toyota",
    "ford",
    "volkswagen",
    "renault",
    "peugeot",
    "fiat",
    "seat",
    "opel",
    "citroen",
    "nissan",
    "honda",
    "hyundai",
    "kia",
    "mazda",
    "skoda",
    "volvo",
    "audi",
    "bmw",
    "mercedes",
    "dacia",
    "suzuki",
    "mitsubishi",
    "chevrolet",
    "jeep",
    "mini",
    "smart",
    "tesla",
    "lexus",
    "alfa romeo",
    "land rover",
];

/// Indoor appliance platforms (BLUED-style).
pub const APPLIANCES: &[&str] = &[
    "refrigerator",
    "washing machine",
    "dryer",
    "dishwasher",
    "microwave",
    "oven",
    "kettle",
    "air conditioner",
    "boiler",
    "laptop",
    "computer",
    "printer",
    "projector",
    "screen",
    "television",
    "lamp",
    "heater",
    "vacuum cleaner",
    "toaster",
    "coffee maker",
    "hair dryer",
    "iron",
    "fan",
    "router",
    "server",
    "light",
    "monitor",
];

/// Indoor rooms (DERI-building-style).
pub const ROOMS: &[&str] = &[
    "room 101",
    "room 112",
    "room 114",
    "room 201",
    "room 204",
    "room 212",
    "room 301",
    "room 310",
    "room 315",
    "meeting room a",
    "meeting room b",
    "open space 1",
    "open space 2",
    "kitchen",
    "server room",
    "lobby",
];

/// Desks inside rooms.
pub const DESKS: &[&str] = &[
    "desk 101a",
    "desk 112c",
    "desk 114b",
    "desk 201a",
    "desk 204d",
    "desk 212a",
    "desk 301c",
    "desk 310b",
];

/// Building floors.
pub const FLOORS: &[&str] = &["ground floor", "first floor", "second floor", "third floor"];

/// Cities: SmartSantander locations plus Galway.
pub const CITIES: &[&str] = &["santander", "galway", "dublin", "bordeaux"];

/// Countries the cities belong to.
pub const COUNTRIES: &[&str] = &["spain", "ireland", "france"];

/// Urban zones.
pub const ZONES: &[&str] = &[
    "building",
    "city centre",
    "harbour",
    "campus",
    "suburb",
    "square",
    "district",
    "park",
];

/// Streets for outdoor platforms.
pub const STREETS: &[&str] = &[
    "main street",
    "shop street",
    "quay street",
    "bridge street",
    "station road",
    "market square",
    "college road",
    "harbour avenue",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_is_complete() {
        assert_eq!(SENSOR_CAPABILITIES.len(), 22);
        assert!(SENSOR_CAPABILITIES.contains(&"soil moisture tension"));
        assert!(SENSOR_CAPABILITIES.contains(&"energy consumption"));
    }

    #[test]
    fn datasets_are_normalized_lowercase() {
        for list in [
            SENSOR_CAPABILITIES,
            MEASUREMENT_UNITS,
            CAR_BRANDS,
            APPLIANCES,
            ROOMS,
            DESKS,
            FLOORS,
            CITIES,
            COUNTRIES,
            ZONES,
            STREETS,
        ] {
            for item in list {
                assert_eq!(*item, item.to_lowercase(), "`{item}` must be lowercase");
                assert_eq!(item.trim(), *item);
                assert!(!item.is_empty());
            }
        }
    }

    #[test]
    fn no_duplicates_within_lists() {
        for list in [SENSOR_CAPABILITIES, CAR_BRANDS, APPLIANCES, ROOMS] {
            let mut v: Vec<&&str> = list.iter().collect();
            v.sort();
            v.dedup();
            assert_eq!(v.len(), list.len());
        }
    }
}
