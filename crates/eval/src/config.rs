//! Evaluation-scale configuration.

use serde::{Deserialize, Serialize};
use tep_corpus::CorpusConfig;

/// Scale and seeding of the evaluation pipeline (Fig. 6).
///
/// [`EvalConfig::paper_scale`] matches the paper's §5.2 numbers (166 seed
/// events, ~14,743 expanded events, 94 subscriptions, 30×30 theme grid
/// with 5 samples per cell). [`EvalConfig::quick`] is a reduced scale that
/// preserves every structural property and runs the full figure suite in
/// minutes on a laptop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// The corpus behind the distributional space.
    pub corpus: CorpusConfig,
    /// Number of seed events to synthesize (paper: 166).
    pub num_seed_events: usize,
    /// Upper bound on expanded events (paper: 14,743).
    pub max_expanded_events: usize,
    /// Number of exact/approximate subscriptions (paper: 94).
    pub num_subscriptions: usize,
    /// Minimum predicates per subscription.
    pub min_predicates: usize,
    /// Maximum predicates per subscription.
    pub max_predicates: usize,
    /// Theme sizes to sweep for events (paper: 1..=30).
    pub event_theme_sizes: Vec<usize>,
    /// Theme sizes to sweep for subscriptions (paper: 1..=30).
    pub subscription_theme_sizes: Vec<usize>,
    /// Samples per grid cell (paper: 5).
    pub samples_per_cell: usize,
    /// Master RNG seed for workload and theme sampling.
    pub seed: u64,
}

impl EvalConfig {
    /// The paper-scale configuration (§5.2).
    pub fn paper_scale() -> EvalConfig {
        EvalConfig {
            corpus: CorpusConfig::standard(),
            num_seed_events: 166,
            max_expanded_events: 14_743,
            num_subscriptions: 94,
            min_predicates: 2,
            max_predicates: 4,
            event_theme_sizes: (1..=30).collect(),
            subscription_theme_sizes: (1..=30).collect(),
            samples_per_cell: 5,
            seed: 0x5EED_2014,
        }
    }

    /// A reduced scale for CI and local runs: same pipeline, smaller
    /// workload, a coarsened theme grid and fewer samples.
    pub fn quick() -> EvalConfig {
        EvalConfig {
            corpus: CorpusConfig::standard(),
            num_seed_events: 60,
            max_expanded_events: 1_500,
            num_subscriptions: 24,
            min_predicates: 2,
            max_predicates: 4,
            event_theme_sizes: vec![1, 2, 3, 5, 7, 10, 15, 20, 30],
            subscription_theme_sizes: vec![1, 2, 3, 5, 7, 10, 15, 20, 30],
            samples_per_cell: 3,
            seed: 0x5EED_2014,
        }
    }

    /// A tiny scale for unit tests (seconds, not minutes).
    pub fn tiny() -> EvalConfig {
        EvalConfig {
            corpus: CorpusConfig::small(),
            num_seed_events: 20,
            max_expanded_events: 200,
            num_subscriptions: 8,
            min_predicates: 2,
            max_predicates: 3,
            event_theme_sizes: vec![2, 6],
            subscription_theme_sizes: vec![2, 6],
            samples_per_cell: 2,
            seed: 0x5EED_2014,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> EvalConfig {
        self.seed = seed;
        self
    }
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_5_2() {
        let c = EvalConfig::paper_scale();
        assert_eq!(c.num_seed_events, 166);
        assert_eq!(c.max_expanded_events, 14_743);
        assert_eq!(c.num_subscriptions, 94);
        assert_eq!(c.event_theme_sizes.len(), 30);
        assert_eq!(c.samples_per_cell, 5);
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = EvalConfig::quick();
        let p = EvalConfig::paper_scale();
        assert!(q.max_expanded_events < p.max_expanded_events);
        assert!(q.event_theme_sizes.len() < p.event_theme_sizes.len());
    }

    #[test]
    fn default_is_quick() {
        assert_eq!(EvalConfig::default(), EvalConfig::quick());
    }
}
