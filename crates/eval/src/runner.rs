//! Sub-experiment execution (Fig. 6, right column).

use crate::metrics::{self, Effectiveness};
use crate::themes::ThemeCombination;
use crate::{EvalConfig, Workload};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tep_corpus::Corpus;
use tep_index::InvertedIndex;
use tep_matcher::{ExactMatcher, Matcher, MatcherConfig, ProbabilisticMatcher, RewritingMatcher};
use tep_semantics::{
    CachedMeasure, DistributionalSpace, EsaMeasure, ParametricVectorSpace, PrecomputedMeasure,
    ThematicEsaMeasure,
};
use tep_thesaurus::Thesaurus;

/// The shared substrate every experiment needs: thesaurus, corpus-backed
/// distributional space, and the parametric vector space — plus factories
/// for each matcher variant under comparison.
#[derive(Debug, Clone)]
pub struct MatcherStack {
    thesaurus: Arc<Thesaurus>,
    space: Arc<DistributionalSpace>,
    pvsm: Arc<ParametricVectorSpace>,
}

impl MatcherStack {
    /// Builds the corpus, index and vector spaces for `config`.
    pub fn build(config: &EvalConfig) -> MatcherStack {
        let thesaurus = Arc::new(Thesaurus::eurovoc_like());
        let corpus = tep_corpus::CorpusGenerator::new(&thesaurus, config.corpus.clone()).generate();
        MatcherStack::from_corpus(thesaurus, &corpus)
    }

    /// Builds the stack from an existing corpus.
    pub fn from_corpus(thesaurus: Arc<Thesaurus>, corpus: &Corpus) -> MatcherStack {
        let space = Arc::new(DistributionalSpace::new(InvertedIndex::build(corpus)));
        let pvsm = Arc::new(ParametricVectorSpace::new((*space).clone()));
        MatcherStack {
            thesaurus,
            space,
            pvsm,
        }
    }

    /// The thematic matcher (the paper's contribution).
    pub fn thematic(&self) -> ProbabilisticMatcher<ThematicEsaMeasure> {
        ProbabilisticMatcher::new(
            ThematicEsaMeasure::new(Arc::clone(&self.pvsm)),
            MatcherConfig::top1(),
        )
    }

    /// The thematic matcher with a relatedness memo cache in front — the
    /// variant whose warm entries make `DegradedMatching::CacheOnly`
    /// meaningfully semantic during overload drills.
    pub fn thematic_cached(&self) -> ProbabilisticMatcher<CachedMeasure<ThematicEsaMeasure>> {
        ProbabilisticMatcher::new(
            CachedMeasure::new(ThematicEsaMeasure::new(Arc::clone(&self.pvsm))),
            MatcherConfig::top1(),
        )
    }

    /// The non-thematic approximate baseline \[16\] (§5.2.5).
    pub fn non_thematic(&self) -> ProbabilisticMatcher<EsaMeasure> {
        ProbabilisticMatcher::new(
            EsaMeasure::new(Arc::clone(&self.space)),
            MatcherConfig::top1(),
        )
    }

    /// The content-based exact baseline (§1.2.1).
    pub fn exact(&self) -> ExactMatcher {
        ExactMatcher::new()
    }

    /// The concept-based rewriting baseline (§5.1).
    pub fn rewriting(&self) -> RewritingMatcher {
        RewritingMatcher::new(Arc::clone(&self.thesaurus))
    }

    /// A matcher over precomputed non-thematic scores for the term
    /// vocabulary of `workload` (§5.1's 91k events/sec configuration).
    pub fn precomputed(&self, workload: &Workload) -> ProbabilisticMatcher<PrecomputedMeasure> {
        let mut sub_terms: Vec<String> = Vec::new();
        for s in workload.subscriptions() {
            for p in s.predicates() {
                push_unique(&mut sub_terms, p.attribute());
                push_unique(&mut sub_terms, p.value());
            }
        }
        let mut event_terms: Vec<String> = Vec::new();
        for e in workload.events() {
            for t in e.tuples() {
                push_unique(&mut event_terms, t.attribute());
                push_unique(&mut event_terms, t.value());
            }
        }
        let inner = EsaMeasure::new(Arc::clone(&self.space));
        let empty = tep_semantics::Theme::empty();
        let measure =
            PrecomputedMeasure::precompute(&inner, &sub_terms, &event_terms, &empty, &empty, 0.0);
        ProbabilisticMatcher::new(measure, MatcherConfig::top1())
    }

    /// The thesaurus.
    pub fn thesaurus(&self) -> &Arc<Thesaurus> {
        &self.thesaurus
    }

    /// The non-thematic distributional space.
    pub fn space(&self) -> &Arc<DistributionalSpace> {
        &self.space
    }

    /// The parametric vector space.
    pub fn pvsm(&self) -> &Arc<ParametricVectorSpace> {
        &self.pvsm
    }

    /// Clears the PVSM memo tables (between sub-experiments, to bound
    /// memory across the 4,500-cell grid).
    pub fn clear_caches(&self) {
        self.pvsm.clear_caches();
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// The outcome of one sub-experiment: one theme combination matched over
/// the full workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubExperimentResult {
    /// Macro-averaged effectiveness.
    pub effectiveness: Effectiveness,
    /// Events per second over the matching phase.
    pub throughput: f64,
    /// Wall-clock time of the matching phase.
    pub elapsed: Duration,
    /// Number of events matched.
    pub num_events: usize,
    /// Number of subscriptions matched against.
    pub num_subscriptions: usize,
}

impl SubExperimentResult {
    /// The maximal F1 (the paper's effectiveness number).
    pub fn f1(&self) -> f64 {
        self.effectiveness.max_f1
    }
}

/// Runs one sub-experiment: associates the combination's theme tags with
/// every event and subscription (Fig. 6 "associate one themes combination
/// at a time"), matches all events against all subscriptions with
/// `matcher`, and reports effectiveness and throughput.
pub fn run_sub_experiment<M: Matcher + ?Sized>(
    matcher: &M,
    workload: &Workload,
    combination: &ThemeCombination,
) -> SubExperimentResult {
    let events: Vec<_> = workload
        .events()
        .iter()
        .map(|e| e.with_theme_tags(&combination.event_tags))
        .collect();
    let subscriptions: Vec<_> = workload
        .subscriptions()
        .iter()
        .map(|s| s.with_theme_tags(&combination.subscription_tags))
        .collect();

    let start = Instant::now();
    let mut scores: Vec<Vec<f64>> = Vec::with_capacity(subscriptions.len());
    for sub in &subscriptions {
        let row: Vec<f64> = events
            .iter()
            .map(|e| matcher.match_event(sub, e).score())
            .collect();
        scores.push(row);
    }
    let elapsed = start.elapsed();

    let rankings: Vec<(Vec<bool>, usize)> = scores
        .iter()
        .enumerate()
        .map(|(s, row)| {
            let mut ranked: Vec<(usize, f64)> = row
                .iter()
                .copied()
                .enumerate()
                .filter(|(_, score)| *score > 0.0)
                .collect();
            ranked.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            let flags: Vec<bool> = ranked
                .iter()
                .map(|(e, _)| workload.ground_truth().is_relevant(s, *e))
                .collect();
            (flags, workload.ground_truth().relevant_count(s))
        })
        .collect();

    SubExperimentResult {
        effectiveness: metrics::effectiveness(&rankings),
        throughput: metrics::throughput(events.len(), elapsed),
        elapsed,
        num_events: events.len(),
        num_subscriptions: subscriptions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> (MatcherStack, Workload) {
        let cfg = EvalConfig::tiny();
        (MatcherStack::build(&cfg), Workload::generate(&cfg))
    }

    #[test]
    fn exact_matches_are_always_ground_truth_relevant() {
        let (stack, workload) = tiny_setup();
        let m = stack.exact();
        let mut hit_any = false;
        for (s, sub) in workload.exact_subscriptions().iter().enumerate() {
            for (e, ev) in workload.events().iter().enumerate() {
                if !m.match_event(sub, ev).is_empty() {
                    assert!(
                        workload.ground_truth().is_relevant(s, e),
                        "exact match must be ground-truth relevant"
                    );
                    hit_any = true;
                }
            }
        }
        assert!(hit_any, "at least the seeds themselves must match");
    }

    #[test]
    fn run_produces_consistent_counts() {
        let (stack, workload) = tiny_setup();
        let combo = ThemeCombination {
            event_tags: vec!["energy policy".into(), "land transport".into()],
            subscription_tags: vec!["energy policy".into()],
        };
        let r = run_sub_experiment(&stack.thematic(), &workload, &combo);
        assert_eq!(r.num_events, workload.events().len());
        assert_eq!(r.num_subscriptions, workload.subscriptions().len());
        assert!(r.throughput > 0.0);
        assert!((0.0..=1.0).contains(&r.f1()));
    }

    #[test]
    fn non_thematic_runner_scores_above_zero() {
        let (stack, workload) = tiny_setup();
        let combo = ThemeCombination {
            event_tags: vec![],
            subscription_tags: vec![],
        };
        let r = run_sub_experiment(&stack.non_thematic(), &workload, &combo);
        assert!(
            r.f1() > 0.0,
            "non-thematic matcher must retrieve something, got F1 = {}",
            r.f1()
        );
    }

    #[test]
    fn precomputed_matcher_agrees_with_non_thematic_ranking() {
        let (stack, workload) = tiny_setup();
        let combo = ThemeCombination {
            event_tags: vec![],
            subscription_tags: vec![],
        };
        let a = run_sub_experiment(&stack.non_thematic(), &workload, &combo);
        let b = run_sub_experiment(&stack.precomputed(&workload), &workload, &combo);
        assert!((a.f1() - b.f1()).abs() < 1e-9, "{} vs {}", a.f1(), b.f1());
    }
}
