//! # tep-index
//!
//! The *build stage* of the paper's distributional model (Fig. 5, step 1):
//! tokenization, stop-word removal, vocabulary interning and an inverted
//! index with the exact TF/IDF weighting of Equations 2–4:
//!
//! ```text
//! tf(t, d)    = 0.5 + 0.5 · freq(t, d) / max{freq(t', d) : t' ∈ d}     (Eq. 2)
//! idf(t, D)   = log(|D| / |{d ∈ D : t ∈ d}|)                           (Eq. 3)
//! tfidf(t, d) = tf(t, d) · idf(t, D)                                   (Eq. 4)
//! ```
//!
//! The index keeps the **raw tf values** alongside the full-space weights
//! because thematic projection (paper Algorithm 1) re-weights vectors with
//! the *original tf* and an idf recomputed over the thematic sub-basis.
//!
//! ```
//! use tep_corpus::{Corpus, CorpusConfig};
//! use tep_index::InvertedIndex;
//!
//! let corpus = Corpus::generate(&CorpusConfig::small());
//! let index = InvertedIndex::build(&corpus);
//! assert_eq!(index.num_docs(), corpus.len());
//! assert!(index.word_id("energy").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod inverted;
mod postings;
mod tokenizer;
mod vocab;

pub use inverted::InvertedIndex;
pub use postings::{Posting, PostingList};
pub use tokenizer::Tokenizer;
pub use vocab::{Vocabulary, WordId};
