//! Tokenization and stop-word filtering.

use std::collections::HashSet;

/// Splits text into normalized word tokens and removes stop words.
///
/// Normalization: ASCII-lowercase, alphanumeric runs only (punctuation
/// splits tokens), single-character tokens dropped. The default stop-word
/// list matches the generic function words the corpus generator emits, so
/// they never contribute to similarity.
///
/// ```
/// use tep_index::Tokenizer;
///
/// let t = Tokenizer::default();
/// assert_eq!(
///     t.tokenize("The energy-consumption of room 112!"),
///     vec!["energy", "consumption", "room", "112"]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stop_words: HashSet<String>,
}

/// Default English stop words (function words).
const DEFAULT_STOP_WORDS: &[&str] = &[
    "the", "a", "an", "of", "in", "on", "at", "to", "and", "or", "is", "are", "was", "were", "be",
    "been", "by", "with", "for", "from", "as", "that", "this", "these", "those", "it", "its",
    "has", "have", "had", "not", "but", "also", "can", "may", "will", "which", "their", "there",
    "than", "then", "into", "over", "under", "between", "such", "per", "each", "other",
];

impl Tokenizer {
    /// Creates a tokenizer with a caller-provided stop-word list.
    ///
    /// Stop words and tokens are normalized by the same whole-string
    /// [`str::to_lowercase`], so context-sensitive casings agree on both
    /// sides — e.g. the Greek final sigma, where a per-character lowering
    /// would produce `"οδοσ"` for a token but `"οδος"` for the stop word
    /// and the filter would silently never match:
    ///
    /// ```
    /// use tep_index::Tokenizer;
    ///
    /// let t = Tokenizer::with_stop_words(["ΟΔΟΣ"]);
    /// assert!(t.is_stop_word("οδος"));
    /// assert_eq!(t.tokenize("ΟΔΟΣ ΠΑΝΕΠΙΣΤΗΜΙΟΥ"), vec!["πανεπιστημιου"]);
    /// ```
    pub fn with_stop_words<I, S>(stop_words: I) -> Tokenizer
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Tokenizer {
            stop_words: stop_words
                .into_iter()
                .map(|s| s.into().to_lowercase())
                .collect(),
        }
    }

    /// Creates a tokenizer that keeps every token (no stop words).
    pub fn keep_all() -> Tokenizer {
        Tokenizer {
            stop_words: HashSet::new(),
        }
    }

    /// Whether `word` (already lowercase) is a stop word.
    pub fn is_stop_word(&self, word: &str) -> bool {
        self.stop_words.contains(word)
    }

    /// Tokenizes `text` into normalized, stop-word-free tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                current.push(ch);
            } else if !current.is_empty() {
                self.flush(&mut current, &mut out);
            }
        }
        if !current.is_empty() {
            self.flush(&mut current, &mut out);
        }
        out
    }

    fn flush(&self, current: &mut String, out: &mut Vec<String>) {
        // Lower the token as a whole string, the same normalization
        // `with_stop_words` applies: per-character `char::to_lowercase`
        // is context-insensitive and disagrees with it on e.g. the Greek
        // final sigma, which left non-ASCII stop words unfilterable.
        let token = std::mem::take(current).to_lowercase();
        if token.chars().count() >= 2 && !self.is_stop_word(&token) {
            out.push(token);
        }
    }
}

impl Default for Tokenizer {
    fn default() -> Tokenizer {
        Tokenizer::with_stop_words(DEFAULT_STOP_WORDS.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("wind-speed: 42 km/h"),
            vec!["wind", "speed", "42", "km"]
        );
    }

    #[test]
    fn removes_stop_words_and_single_chars() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("the cat is on a mat"), vec!["cat", "mat"]);
        assert_eq!(t.tokenize("x y z room"), vec!["room"]);
    }

    #[test]
    fn lowercases() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("Energy CONSUMPTION"),
            vec!["energy", "consumption"]
        );
    }

    #[test]
    fn keep_all_keeps_stop_words() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("the cat"), vec!["the", "cat"]);
    }

    #[test]
    fn custom_stop_words() {
        let t = Tokenizer::with_stop_words(["cat"]);
        assert_eq!(t.tokenize("the cat sat"), vec!["the", "sat"]);
        assert!(t.is_stop_word("cat"));
    }

    #[test]
    fn keeps_short_numeric_codes() {
        // "no2", "co" style capability names: 2 chars are kept.
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("co no2 o3"), vec!["co", "no2", "o3"]);
    }

    #[test]
    fn non_ascii_stop_words_filter_like_tokens() {
        // Regression: `tokenize` used per-char `char::to_lowercase` while
        // `with_stop_words` used `str::to_lowercase`; the two disagree on
        // context-sensitive casings (Greek capital sigma at word end
        // lowers to final sigma only as a whole string), so a stop word
        // like "ΟΔΟΣ" could never match its own tokenization.
        let t = Tokenizer::with_stop_words(["ΟΔΟΣ", "STRASSE"]);
        assert_eq!(t.tokenize("ΟΔΟΣ ΑΘΗΝΑΣ"), vec!["αθηνας"]);
        assert_eq!(t.tokenize("Strasse 12"), vec!["12"]);
        // Tokens themselves use the context-sensitive form too.
        assert_eq!(t.tokenize("ΜΕΓΑΣ"), vec!["μεγας"]);
    }

    #[test]
    fn empty_input() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("  !! ").is_empty());
    }
}
