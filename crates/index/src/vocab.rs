//! Word interning.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WordId(pub u32);

impl WordId {
    /// The dense index of the word.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A bidirectional word ↔ [`WordId`] mapping.
///
/// Interning keeps the hot matching path free of string hashing: the
/// vector-space layer operates on `WordId`s only.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    ids: HashMap<String, WordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Interns `word`, returning its id (existing or fresh).
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(id) = self.ids.get(word) {
            return *id;
        }
        let id = WordId(self.words.len() as u32);
        self.words.push(word.to_string());
        self.ids.insert(word.to_string(), id);
        id
    }

    /// The id of `word`, if interned.
    pub fn id(&self, word: &str) -> Option<WordId> {
        self.ids.get(word).copied()
    }

    /// The word for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this vocabulary.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id.index()]
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (WordId(i as u32), w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("energy");
        let b = v.intern("energy");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), WordId(0));
        assert_eq!(v.intern("b"), WordId(1));
        assert_eq!(v.word(WordId(1)), "b");
    }

    #[test]
    fn missing_word_is_none() {
        let v = Vocabulary::new();
        assert!(v.id("nothing").is_none());
        assert!(v.is_empty());
    }

    #[test]
    fn iter_yields_in_order() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let all: Vec<_> = v.iter().map(|(_, w)| w).collect();
        assert_eq!(all, vec!["x", "y"]);
    }
}
