//! The inverted index (Fig. 5, build stage).

use crate::postings::{Posting, PostingList};
use crate::tokenizer::Tokenizer;
use crate::vocab::{Vocabulary, WordId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tep_corpus::{Corpus, DocId};

/// An inverted index over a [`Corpus`] with the paper's TF/IDF weighting.
///
/// Building the index is "identical to building the non-thematic
/// distributional space model" (paper §4): tokenize, remove stop words,
/// index each word as a weighted vector of documents. The thematic layer
/// (in `tep-semantics`) then *projects* these vectors — it never needs to
/// re-index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex {
    vocab: Vocabulary,
    postings: Vec<PostingList>,
    num_docs: usize,
}

impl InvertedIndex {
    /// Builds the index with the default tokenizer.
    pub fn build(corpus: &Corpus) -> InvertedIndex {
        InvertedIndex::build_with(corpus, &Tokenizer::default())
    }

    /// Builds the index with a caller-provided tokenizer.
    pub fn build_with(corpus: &Corpus, tokenizer: &Tokenizer) -> InvertedIndex {
        let mut vocab = Vocabulary::new();
        // word -> (doc -> raw freq), accumulated in doc order.
        let mut raw: Vec<Vec<(DocId, u32)>> = Vec::new();

        for doc in corpus.documents() {
            let mut freqs: HashMap<WordId, u32> = HashMap::new();
            for token in tokenizer.tokenize(doc.text()) {
                let id = vocab.intern(&token);
                *freqs.entry(id).or_insert(0) += 1;
            }
            let max_freq = freqs.values().copied().max().unwrap_or(1).max(1);
            for (wid, freq) in freqs {
                if wid.index() >= raw.len() {
                    raw.resize_with(wid.index() + 1, Vec::new);
                }
                // Store the Eq. 2 tf scaled into the u32 via f32 later; keep
                // raw freq and per-doc max for now.
                raw[wid.index()].push((doc.id(), pack(freq, max_freq)));
            }
        }

        let num_docs = corpus.len();
        let mut postings = Vec::with_capacity(raw.len());
        for entries in raw.iter_mut() {
            entries.sort_by_key(|(d, _)| *d);
            let df = entries.len();
            let idf = idf(num_docs, df);
            let list: Vec<Posting> = entries
                .iter()
                .map(|(doc, packed)| {
                    let tf = unpack(*packed);
                    Posting {
                        doc: *doc,
                        tf,
                        weight: tf * idf as f32,
                    }
                })
                .collect();
            postings.push(PostingList::from_sorted(list));
        }

        InvertedIndex {
            vocab,
            postings,
            num_docs,
        }
    }

    /// Number of indexed documents (`|D|`, the dimensionality of the full
    /// space).
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Number of distinct indexed words.
    pub fn vocabulary_len(&self) -> usize {
        self.vocab.len()
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The id of `word`, if it occurs in the corpus.
    pub fn word_id(&self, word: &str) -> Option<WordId> {
        self.vocab.id(word)
    }

    /// The postings of `word_id`.
    ///
    /// # Panics
    ///
    /// Panics if `word_id` does not belong to this index.
    pub fn postings(&self, word_id: WordId) -> &PostingList {
        &self.postings[word_id.index()]
    }

    /// Document frequency of `word_id`.
    pub fn document_frequency(&self, word_id: WordId) -> usize {
        self.postings(word_id).len()
    }

    /// Inverse document frequency (Eq. 3) of `word_id` in the full space.
    pub fn idf(&self, word_id: WordId) -> f64 {
        idf(self.num_docs, self.document_frequency(word_id))
    }
}

/// Eq. 3 with natural log; `df = 0` yields 0 by convention (unknown word).
pub(crate) fn idf(num_docs: usize, df: usize) -> f64 {
    if df == 0 || num_docs == 0 {
        return 0.0;
    }
    (num_docs as f64 / df as f64).ln()
}

/// Packs Eq. 2's tf into a u32 to keep the accumulation vector compact.
fn pack(freq: u32, max_freq: u32) -> u32 {
    let tf = 0.5 + 0.5 * (freq as f32 / max_freq as f32);
    (tf * 1_000_000.0) as u32
}

fn unpack(packed: u32) -> f32 {
    packed as f32 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_corpus::CorpusConfig;

    fn index() -> InvertedIndex {
        let corpus = Corpus::generate(&CorpusConfig::small());
        InvertedIndex::build(&corpus)
    }

    #[test]
    fn indexes_every_document() {
        let corpus = Corpus::generate(&CorpusConfig::small());
        let idx = InvertedIndex::build(&corpus);
        assert_eq!(idx.num_docs(), corpus.len());
        assert!(idx.vocabulary_len() > 100);
    }

    #[test]
    fn stop_words_are_not_indexed() {
        let idx = index();
        assert!(idx.word_id("the").is_none());
        assert!(idx.word_id("and").is_none());
    }

    #[test]
    fn tf_values_respect_eq2_bounds() {
        let idx = index();
        for wid in 0..idx.vocabulary_len() {
            for p in idx.postings(WordId(wid as u32)).iter() {
                assert!(
                    p.tf > 0.5 - 1e-6 && p.tf <= 1.0 + 1e-6,
                    "tf {} out of Eq.2 range",
                    p.tf
                );
            }
        }
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let idx = index();
        // The most widespread word must have a lower idf than the rarest.
        let (mut common, mut rare) = (WordId(0), WordId(0));
        for w in 0..idx.vocabulary_len() {
            let wid = WordId(w as u32);
            if idx.document_frequency(wid) > idx.document_frequency(common) {
                common = wid;
            }
            if idx.document_frequency(wid) < idx.document_frequency(rare) {
                rare = wid;
            }
        }
        assert!(idx.document_frequency(common) > idx.document_frequency(rare));
        assert!(idx.idf(common) < idx.idf(rare));
    }

    #[test]
    fn weights_are_tf_times_idf() {
        let idx = index();
        let wid = idx.word_id("energy").unwrap();
        let idf = idx.idf(wid) as f32;
        for p in idx.postings(wid).iter() {
            assert!((p.weight - p.tf * idf).abs() < 1e-4);
        }
    }

    #[test]
    fn idf_convention_for_zero_df() {
        assert_eq!(idf(100, 0), 0.0);
        assert_eq!(idf(0, 0), 0.0);
        assert!(idf(100, 1) > idf(100, 50));
    }

    #[test]
    fn postings_sorted_by_doc() {
        let idx = index();
        let wid = idx.word_id("energy").unwrap();
        let docs: Vec<u32> = idx.postings(wid).iter().map(|p| p.doc.0).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(docs, sorted);
    }

    #[test]
    fn build_is_deterministic() {
        let corpus = Corpus::generate(&CorpusConfig::small());
        let a = InvertedIndex::build(&corpus);
        let b = InvertedIndex::build(&corpus);
        assert_eq!(a.vocabulary_len(), b.vocabulary_len());
        let wid = a.word_id("energy").unwrap();
        assert_eq!(a.postings(wid), b.postings(wid));
    }
}
