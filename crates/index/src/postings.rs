//! Posting lists: the rows of the inverted index.

use serde::{Deserialize, Serialize};
use tep_corpus::DocId;

/// One `(word, document)` cell of the inverted index.
///
/// Keeps both the normalized term frequency (Eq. 2) and the full-space
/// TF/IDF weight (Eq. 4). The raw `tf` is needed at thematic-projection
/// time (Algorithm 1 line 8 reuses the original tf while recomputing idf
/// over the thematic basis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// The document the word occurs in.
    pub doc: DocId,
    /// Normalized term frequency `0.5 + 0.5·freq/maxfreq` (Eq. 2).
    pub tf: f32,
    /// Full-space weight `tf · idf(t, D)` (Eq. 4).
    pub weight: f32,
}

/// The postings of one word, sorted by ascending document id.
///
/// Sorted order lets the vector-space layer compute distances and
/// projections with linear merges instead of hash lookups.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PostingList {
    entries: Vec<Posting>,
}

impl PostingList {
    pub(crate) fn from_sorted(entries: Vec<Posting>) -> PostingList {
        debug_assert!(entries.windows(2).all(|w| w[0].doc < w[1].doc));
        PostingList { entries }
    }

    /// The postings, sorted by ascending document id.
    pub fn entries(&self) -> &[Posting] {
        &self.entries
    }

    /// Number of documents the word occurs in (its document frequency).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the word occurs in no document.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The posting for `doc`, if the word occurs in it.
    pub fn get(&self, doc: DocId) -> Option<&Posting> {
        self.entries
            .binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Iterates over postings in document order.
    pub fn iter(&self) -> impl Iterator<Item = &Posting> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> PostingList {
        PostingList::from_sorted(vec![
            Posting {
                doc: DocId(1),
                tf: 0.75,
                weight: 1.5,
            },
            Posting {
                doc: DocId(4),
                tf: 1.0,
                weight: 2.0,
            },
            Posting {
                doc: DocId(9),
                tf: 0.5,
                weight: 1.0,
            },
        ])
    }

    #[test]
    fn get_finds_by_binary_search() {
        let l = list();
        assert_eq!(l.get(DocId(4)).unwrap().tf, 1.0);
        assert!(l.get(DocId(5)).is_none());
    }

    #[test]
    fn len_is_document_frequency() {
        assert_eq!(list().len(), 3);
        assert!(!list().is_empty());
        assert!(PostingList::default().is_empty());
    }

    #[test]
    fn iter_in_doc_order() {
        let docs: Vec<u32> = list().iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 4, 9]);
    }
}
