//! Cost of thematic projection (Algorithm 1) as a function of theme size,
//! and the distance computation on projected vs full vectors — the
//! mechanism behind the Figure 9 throughput gains ("the more filtering
//! that occurs during thematic projection ... the less time is required").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tep::prelude::*;

fn bench_projection(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig::standard());
    let space = DistributionalSpace::new(InvertedIndex::build(&corpus));
    let pvsm = ParametricVectorSpace::new(space.clone());
    let th = Thesaurus::eurovoc_like();
    let all_tags = th.top_terms_of(&Domain::ALL);

    let mut group = c.benchmark_group("project_term");
    group.sample_size(30);
    for size in [1usize, 4, 12, 30] {
        let theme = Theme::new(all_tags[..size].iter().map(|t| t.as_str()));
        group.bench_with_input(BenchmarkId::new("theme_size", size), &theme, |b, theme| {
            b.iter(|| {
                // Clear so the projection itself is measured, not the memo.
                pvsm.clear_caches();
                pvsm.project("energy consumption", theme).nnz()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("distance");
    group.sample_size(50);
    let energy = Theme::new([
        "energy policy",
        "electrical industry",
        "energy metering",
        "building energy",
    ]);
    let full_a = space.term_vector("energy consumption").normalized();
    let full_b = space.term_vector("electricity usage").normalized();
    let proj_a = (*pvsm.project_normalized("energy consumption", &energy)).clone();
    let proj_b = (*pvsm.project_normalized("electricity usage", &energy)).clone();
    group.bench_function("full_space", |b| {
        b.iter(|| full_a.euclidean_distance(&full_b))
    });
    group.bench_function("projected", |b| {
        b.iter(|| proj_a.euclidean_distance(&proj_b))
    });
    group.finish();

    let mut group = c.benchmark_group("theme_basis");
    group.sample_size(30);
    for size in [1usize, 8, 30] {
        let theme = Theme::new(all_tags[..size].iter().map(|t| t.as_str()));
        group.bench_with_input(BenchmarkId::new("compute", size), &theme, |b, theme| {
            b.iter(|| tep::semantics::ThemeBasis::compute(&space, theme).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
