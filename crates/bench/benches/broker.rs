//! End-to-end broker throughput: publish → match → deliver across worker
//! counts, with the exact matcher (pure middleware overhead) and the
//! thematic matcher (realistic load).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;
use tep_eval::{EvalConfig, MatcherStack, Workload};

const FLUSH_DEADLINE: Duration = Duration::from_secs(60);

/// Injected panics would otherwise print a backtrace per fault and
/// dominate the bench output.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected matcher fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("injected matcher fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn bench_broker(c: &mut Criterion) {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();
    let events: Vec<Event> = workload
        .events()
        .iter()
        .take(128)
        .map(|e| e.with_theme_tags(tags.clone()))
        .collect();

    let mut group = c.benchmark_group("broker_publish");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("exact_workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let broker = Broker::start(
                        Arc::new(ExactMatcher::new()),
                        BrokerConfig::default().with_workers(workers),
                    );
                    let mut receivers = Vec::new();
                    for s in workload.subscriptions().iter().take(8) {
                        receivers.push(broker.subscribe(s.clone()).unwrap().1);
                    }
                    for e in &events {
                        broker.publish(e.clone()).unwrap();
                    }
                    broker.flush_timeout(FLUSH_DEADLINE).unwrap();
                    let stats = broker.stats();
                    broker.shutdown();
                    stats.processed
                })
            },
        );
    }
    group.bench_function("thematic_workers_2", |b| {
        let matcher = Arc::new(stack.thematic());
        b.iter(|| {
            let broker = Broker::start(
                Arc::clone(&matcher),
                BrokerConfig::default().with_workers(2),
            );
            let mut receivers = Vec::new();
            for s in workload.subscriptions().iter().take(8) {
                receivers.push(broker.subscribe(s.with_theme_tags(tags.clone())).unwrap().1);
            }
            for e in events.iter().take(32) {
                broker.publish(e.clone()).unwrap();
            }
            broker.flush_timeout(FLUSH_DEADLINE).unwrap();
            let stats = broker.stats();
            broker.shutdown();
            stats.processed
        })
    });
    // Supervised-runtime overhead under faults: ~1% of events panic in
    // the matcher, exercising catch_unwind isolation and quarantine on
    // the hot path.
    group.bench_function("exact_workers_2_faulty_1pct", |b| {
        silence_injected_panics();
        b.iter(|| {
            let matcher = FaultInjectingMatcher::new(
                ExactMatcher::new(),
                FaultConfig::none(0xBE7C).with_panic_rate(0.01),
            );
            let broker = Broker::start(
                Arc::new(matcher),
                BrokerConfig::default()
                    .with_workers(2)
                    .with_max_match_attempts(1),
            );
            let mut receivers = Vec::new();
            for s in workload.subscriptions().iter().take(8) {
                receivers.push(broker.subscribe(s.clone()).unwrap().1);
            }
            for e in &events {
                broker.publish(e.clone()).unwrap();
            }
            broker.flush_timeout(FLUSH_DEADLINE).unwrap();
            let stats = broker.stats();
            broker.shutdown();
            (stats.processed, stats.worker_panics, stats.quarantined)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_broker);
criterion_main!(benches);
