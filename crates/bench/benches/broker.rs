//! End-to-end broker throughput: publish → match → deliver across worker
//! counts, with the exact matcher (pure middleware overhead) and the
//! thematic matcher (realistic load).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use tep::prelude::*;
use tep_eval::{EvalConfig, MatcherStack, Workload};

fn bench_broker(c: &mut Criterion) {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();
    let events: Vec<Event> = workload
        .events()
        .iter()
        .take(128)
        .map(|e| e.with_theme_tags(tags.clone()))
        .collect();

    let mut group = c.benchmark_group("broker_publish");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("exact_workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let broker = Broker::start(
                        Arc::new(ExactMatcher::new()),
                        BrokerConfig::default().with_workers(workers),
                    );
                    let mut receivers = Vec::new();
                    for s in workload.subscriptions().iter().take(8) {
                        receivers.push(broker.subscribe(s.clone()).unwrap().1);
                    }
                    for e in &events {
                        broker.publish(e.clone()).unwrap();
                    }
                    broker.flush();
                    let stats = broker.stats();
                    broker.shutdown();
                    stats.processed
                })
            },
        );
    }
    group.bench_function("thematic_workers_2", |b| {
        let matcher = Arc::new(stack.thematic());
        b.iter(|| {
            let broker = Broker::start(
                Arc::clone(&matcher),
                BrokerConfig::default().with_workers(2),
            );
            let mut receivers = Vec::new();
            for s in workload.subscriptions().iter().take(8) {
                receivers.push(broker.subscribe(s.with_theme_tags(tags.clone())).unwrap().1);
            }
            for e in events.iter().take(32) {
                broker.publish(e.clone()).unwrap();
            }
            broker.flush();
            let stats = broker.stats();
            broker.shutdown();
            stats.processed
        })
    });
    group.finish();
}

criterion_group!(benches, bench_broker);
criterion_main!(benches);
