//! End-to-end broker throughput: publish → match → deliver across worker
//! counts, with the exact matcher (pure middleware overhead) and the
//! thematic matcher (realistic load).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;
use tep_eval::{EvalConfig, MatcherStack, Workload};

const FLUSH_DEADLINE: Duration = Duration::from_secs(60);

/// Injected panics would otherwise print a backtrace per fault and
/// dominate the bench output.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected matcher fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("injected matcher fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn bench_broker(c: &mut Criterion) {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();
    let events: Vec<Event> = workload
        .events()
        .iter()
        .take(128)
        .map(|e| e.with_theme_tags(tags.clone()))
        .collect();

    let mut group = c.benchmark_group("broker_publish");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("exact_workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let broker = Broker::start(
                        Arc::new(ExactMatcher::new()),
                        BrokerConfig::default().with_workers(workers),
                    );
                    let mut receivers = Vec::new();
                    for s in workload.subscriptions().iter().take(8) {
                        receivers.push(broker.subscribe(s.clone()).unwrap().1);
                    }
                    for e in &events {
                        broker.publish(e.clone()).unwrap();
                    }
                    broker.flush_timeout(FLUSH_DEADLINE).unwrap();
                    let stats = broker.stats();
                    broker.shutdown();
                    stats.processed
                })
            },
        );
    }
    group.bench_function("thematic_workers_2", |b| {
        let matcher = Arc::new(stack.thematic());
        b.iter(|| {
            let broker = Broker::start(
                Arc::clone(&matcher),
                BrokerConfig::default().with_workers(2),
            );
            let mut receivers = Vec::new();
            for s in workload.subscriptions().iter().take(8) {
                receivers.push(broker.subscribe(s.with_theme_tags(tags.clone())).unwrap().1);
            }
            for e in events.iter().take(32) {
                broker.publish(e.clone()).unwrap();
            }
            broker.flush_timeout(FLUSH_DEADLINE).unwrap();
            let stats = broker.stats();
            broker.shutdown();
            stats.processed
        })
    });
    // Theme-indexed routing: one domain tag per side (round-robin) so an
    // event only overlaps ~1/6 of the subscriptions; dispatch skips the
    // rest without a match test.
    group.bench_function("thematic_workers_2_routed", |b| {
        let matcher = Arc::new(stack.thematic());
        b.iter(|| {
            let broker = Broker::start(
                Arc::clone(&matcher),
                BrokerConfig::default()
                    .with_workers(2)
                    .with_routing_policy(RoutingPolicy::ThemeOverlap),
            );
            let mut receivers = Vec::new();
            for (i, s) in workload.subscriptions().iter().take(8).enumerate() {
                let tag = [tags[i % tags.len()].clone()];
                receivers.push(broker.subscribe(s.with_theme_tags(tag)).unwrap().1);
            }
            for (i, e) in events.iter().take(32).enumerate() {
                let tag = [tags[i % tags.len()].clone()];
                broker.publish(e.with_theme_tags(tag)).unwrap();
            }
            broker.flush_timeout(FLUSH_DEADLINE).unwrap();
            let stats = broker.stats();
            broker.shutdown();
            (stats.processed, stats.routing_skipped)
        })
    });
    // Supervised-runtime overhead under faults: ~1% of events panic in
    // the matcher, exercising catch_unwind isolation and quarantine on
    // the hot path.
    group.bench_function("exact_workers_2_faulty_1pct", |b| {
        silence_injected_panics();
        b.iter(|| {
            let matcher = FaultInjectingMatcher::new(
                ExactMatcher::new(),
                FaultConfig::none(0xBE7C).with_panic_rate(0.01),
            );
            let broker = Broker::start(
                Arc::new(matcher),
                BrokerConfig::default()
                    .with_workers(2)
                    .with_max_match_attempts(1),
            );
            let mut receivers = Vec::new();
            for s in workload.subscriptions().iter().take(8) {
                receivers.push(broker.subscribe(s.clone()).unwrap().1);
            }
            for e in &events {
                broker.publish(e.clone()).unwrap();
            }
            broker.flush_timeout(FLUSH_DEADLINE).unwrap();
            let stats = broker.stats();
            broker.shutdown();
            (stats.processed, stats.worker_panics, stats.quarantined)
        })
    });
    group.finish();

    // Cache visibility: one extra thematic pass reporting the semantic
    // cache counters alongside the throughput numbers above.
    let broker = Broker::start(
        Arc::new(stack.thematic()),
        BrokerConfig::default().with_workers(2),
    );
    let mut receivers = Vec::new();
    for s in workload.subscriptions().iter().take(8) {
        receivers.push(broker.subscribe(s.with_theme_tags(tags.clone())).unwrap().1);
    }
    for e in events.iter().take(32) {
        broker.publish(e.clone()).unwrap();
    }
    broker.flush_timeout(FLUSH_DEADLINE).unwrap();
    let cache = broker.stats().semantic_cache;
    let stages = broker.stage_latencies();
    broker.shutdown();
    println!(
        "broker_publish/thematic cache: hit rate {:.1}% ({} hits, {} misses, {} evictions, {} pinned)",
        cache.hit_rate() * 100.0,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.pinned,
    );
    // Per-stage latency percentiles for the same pass, so the criterion
    // report shows where the wall-clock goes, not just the total.
    for (name, h) in [
        ("queue_wait", &stages.queue_wait),
        ("match", &stages.match_combined()),
        ("deliver", &stages.deliver),
    ] {
        println!(
            "broker_publish/thematic stage {name}: n={} p50={:.1}µs p95={:.1}µs p99={:.1}µs max={:.1}µs",
            h.count(),
            h.p50().as_nanos() as f64 / 1e3,
            h.p95().as_nanos() as f64 / 1e3,
            h.p99().as_nanos() as f64 / 1e3,
            h.max().as_nanos() as f64 / 1e3,
        );
    }
}

criterion_group!(benches, bench_broker);
criterion_main!(benches);
