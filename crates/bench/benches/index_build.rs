//! Corpus generation and index build costs (the ESA build stage of
//! Fig. 5) over corpus size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tep::prelude::*;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generate");
    group.sample_size(10);
    for docs in [300usize, 1000, 3000] {
        let cfg = CorpusConfig::standard().with_num_docs(docs);
        group.bench_with_input(BenchmarkId::new("docs", docs), &cfg, |b, cfg| {
            b.iter(|| Corpus::generate(cfg).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for docs in [300usize, 1000, 3000] {
        let corpus = Corpus::generate(&CorpusConfig::standard().with_num_docs(docs));
        group.bench_with_input(BenchmarkId::new("docs", docs), &corpus, |b, corpus| {
            b.iter(|| InvertedIndex::build(corpus).vocabulary_len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tokenize");
    let corpus = Corpus::generate(&CorpusConfig::small());
    let text: String = corpus
        .documents()
        .take(50)
        .map(|d| d.text())
        .collect::<Vec<_>>()
        .join(" ");
    let tokenizer = Tokenizer::default();
    group.bench_function("50_docs", |b| b.iter(|| tokenizer.tokenize(&text).len()));
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
