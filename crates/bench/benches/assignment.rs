//! Hungarian top-1 and Murty top-k assignment costs over problem size —
//! the mapping machinery of §3.5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tep::matcher::assignment::{solve, solve_top_k, CostMatrix};

/// Deterministic pseudo-random cost matrix.
fn matrix(rows: usize, cols: usize, seed: u64) -> CostMatrix {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next() * 10.0).collect();
    CostMatrix::from_rows(rows, cols, data)
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [4usize, 8, 16, 32] {
        let m = matrix(n, n + 4, n as u64);
        group.bench_with_input(BenchmarkId::new("solve", n), &m, |b, m| {
            b.iter(|| solve(m).map(|s| s.total_cost))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("murty");
    group.sample_size(30);
    let m = matrix(6, 10, 99);
    for k in [1usize, 5, 10, 25] {
        group.bench_with_input(BenchmarkId::new("top_k", k), &k, |b, &k| {
            b.iter(|| solve_top_k(&m, k).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
