//! Single-event matching latency per matcher variant — the microscopic
//! counterpart of the Figure 9 / Table 1 throughput comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tep::prelude::*;
use tep_eval::{EvalConfig, MatcherStack, Workload};

fn fixtures() -> (MatcherStack, Workload, Vec<String>) {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let tags: Vec<String> = Domain::ALL
        .iter()
        .flat_map(|d| th.top_terms(*d)[..2].iter().map(|t| t.as_str().to_string()))
        .collect();
    (stack, workload, tags)
}

fn bench_matchers(c: &mut Criterion) {
    let (stack, workload, tags) = fixtures();
    let thematic = stack.thematic();
    let non_thematic = stack.non_thematic();
    let exact = stack.exact();
    let rewriting = stack.rewriting();
    let precomputed = stack.precomputed(&workload);

    let sub_plain = workload.subscriptions()[0].clone();
    let sub_themed = sub_plain.with_theme_tags(tags.clone());
    let events_plain: Vec<Event> = workload.events().iter().take(64).cloned().collect();
    let events_themed: Vec<Event> = events_plain
        .iter()
        .map(|e| e.with_theme_tags(tags.clone()))
        .collect();

    let mut group = c.benchmark_group("match_event");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("matcher", "thematic"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for e in &events_themed {
                acc += thematic.match_event(&sub_themed, e).score();
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("matcher", "non-thematic"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for e in &events_plain {
                acc += non_thematic.match_event(&sub_plain, e).score();
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("matcher", "exact"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for e in &events_plain {
                acc += exact.match_event(&sub_plain, e).score();
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("matcher", "rewriting"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for e in &events_plain {
                acc += rewriting.match_event(&sub_plain, e).score();
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("matcher", "precomputed"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for e in &events_plain {
                acc += precomputed.match_event(&sub_plain, e).score();
            }
            acc
        })
    });
    group.finish();

    // Top-k overhead vs top-1.
    let mut group = c.benchmark_group("match_modes");
    group.sample_size(20);
    for k in [1usize, 3, 5] {
        let matcher = ProbabilisticMatcher::new(
            ThematicEsaMeasure::new(Arc::clone(stack.pvsm())),
            if k == 1 {
                MatcherConfig::top1()
            } else {
                MatcherConfig::top_k(k)
            },
        );
        group.bench_with_input(BenchmarkId::new("top_k", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for e in events_themed.iter().take(16) {
                    acc += matcher.match_event(&sub_themed, e).score();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
