//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **combiner** — how attribute/value similarities merge into one cell
//!   (Product vs means vs Min);
//! * **caching** — the memoized vs uncached thematic measure (the paper's
//!   §5.3.2 "caching" optimization opportunity);
//! * **raw vs normalized** distance (DESIGN.md §5: Eq. 5 verbatim vs the
//!   unit-norm variant the measure uses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tep::prelude::*;
use tep_eval::{EvalConfig, MatcherStack, Workload};

fn bench_ablation(c: &mut Criterion) {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();
    let sub = workload.subscriptions()[0].with_theme_tags(tags.clone());
    let events: Vec<Event> = workload
        .events()
        .iter()
        .take(32)
        .map(|e| e.with_theme_tags(tags.clone()))
        .collect();

    let mut group = c.benchmark_group("combiner");
    group.sample_size(20);
    for (name, combiner) in [
        ("product", Combiner::Product),
        ("arith_mean", Combiner::ArithmeticMean),
        ("geo_mean", Combiner::GeometricMean),
        ("min", Combiner::Min),
    ] {
        let matcher = ProbabilisticMatcher::new(
            ThematicEsaMeasure::new(Arc::clone(stack.pvsm())),
            MatcherConfig::top1().with_combiner(combiner),
        );
        group.bench_function(BenchmarkId::new("combiner", name), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for e in &events {
                    acc += matcher.match_event(&sub, e).score();
                }
                acc
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("measure_caching");
    group.sample_size(10);
    let theme = Theme::new(tags.iter().map(|s| s.as_str()));
    let pairs: Vec<(&str, &str)> = vec![
        ("energy consumption", "electricity usage"),
        ("laptop", "computer"),
        ("parking", "garage spot"),
        ("room 112", "chamber 112"),
    ];
    group.bench_function("uncached_projection", |b| {
        b.iter(|| {
            stack.pvsm().clear_caches();
            let mut acc = 0.0;
            for (a, x) in &pairs {
                acc += stack.pvsm().relatedness(a, &theme, x, &theme);
            }
            acc
        })
    });
    group.bench_function("cached_projection", |b| {
        // Warm once, then measure pure cache hits.
        for (a, x) in &pairs {
            stack.pvsm().relatedness(a, &theme, x, &theme);
        }
        b.iter(|| {
            let mut acc = 0.0;
            for (a, x) in &pairs {
                acc += stack.pvsm().relatedness(a, &theme, x, &theme);
            }
            acc
        })
    });
    group.finish();

    let mut group = c.benchmark_group("distance_variant");
    group.sample_size(50);
    let va = stack.space().term_vector("energy consumption");
    let vb = stack.space().term_vector("electricity usage");
    let na = va.normalized();
    let nb = vb.normalized();
    group.bench_function("raw_eq5", |b| b.iter(|| va.euclidean_distance(&vb)));
    group.bench_function("normalized", |b| b.iter(|| na.euclidean_distance(&nb)));
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
