//! End-to-end broker throughput scenarios with machine-readable output.
//!
//! `probe bench` runs these and writes `BENCH_throughput.json`, the file
//! CI's bench smoke step regenerates so throughput regressions show up as
//! a diff. Each scenario reports events/sec **and** the semantic cache
//! counters sampled from the matcher, so cache-efficiency regressions are
//! visible alongside raw throughput.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tep::prelude::*;
use tep_eval::{EvalConfig, MatcherStack, Workload};

/// Deadline for draining a scenario's backlog; generous because CI
/// machines can be slow and a missed flush would abort the probe.
const FLUSH_DEADLINE: Duration = Duration::from_secs(120);

/// Events published per burst before the bench waits for the drain.
///
/// Large enough that the workers' batch dequeue (`recv_batch`) stays
/// saturated, small enough that an event's queue wait is bounded by a
/// burst's drain time rather than the whole round's (§15 of DESIGN.md
/// covers the tuning).
const PUBLISH_BURST: usize = 128;

/// Percentile summary of one pipeline stage's latency histogram
/// (nanosecond units), as reported in `BENCH_throughput.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePercentiles {
    /// Stage name (`queue_wait`, `match`, `match_exact`,
    /// `match_thematic`, `match_cached`, or `deliver`).
    pub stage: String,
    /// Samples recorded into the stage histogram.
    pub count: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Largest recorded latency in nanoseconds.
    pub max_ns: u64,
}

impl StagePercentiles {
    fn from_snapshot(stage: &str, snap: &HistogramSnapshot) -> StagePercentiles {
        StagePercentiles {
            stage: stage.to_string(),
            count: snap.count(),
            p50_ns: snap.p50().as_nanos() as u64,
            p95_ns: snap.p95().as_nanos() as u64,
            p99_ns: snap.p99().as_nanos() as u64,
            max_ns: snap.max().as_nanos() as u64,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"stage\":\"{}\",\"count\":{},\"p50_ns\":{},",
                "\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}"
            ),
            self.stage, self.count, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns,
        )
    }

    /// One human-readable line (microsecond units for legibility).
    pub fn summary(&self) -> String {
        format!(
            "  stage {:<14} n={:<7} p50={:>9.1}µs p95={:>9.1}µs p99={:>9.1}µs max={:>9.1}µs",
            self.stage,
            self.count,
            self.p50_ns as f64 / 1e3,
            self.p95_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

/// Builds the standard per-stage percentile list from a broker's stage
/// latency snapshot: queue wait, combined match, the three match
/// classes, and deliver.
pub fn stage_percentiles(stages: &StageLatencies) -> Vec<StagePercentiles> {
    vec![
        StagePercentiles::from_snapshot("queue_wait", &stages.queue_wait),
        StagePercentiles::from_snapshot("match", &stages.match_combined()),
        StagePercentiles::from_snapshot("match_exact", &stages.match_exact),
        StagePercentiles::from_snapshot("match_thematic", &stages.match_thematic),
        StagePercentiles::from_snapshot("match_cached", &stages.match_cached),
        StagePercentiles::from_snapshot("deliver", &stages.deliver),
    ]
}

/// The measured outcome of one broker scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioThroughput {
    /// Scenario name (stable identifier, used as the JSON key).
    pub name: String,
    /// Events published (and fully processed).
    pub events: u64,
    /// Wall-clock seconds from first publish to drained queue.
    pub elapsed_secs: f64,
    /// `events / elapsed_secs`.
    pub events_per_sec: f64,
    /// Subscription × event match tests actually executed.
    pub match_tests: u64,
    /// Notifications delivered.
    pub notifications: u64,
    /// Pairs skipped by theme-overlap routing (0 under broadcast).
    pub routing_skipped: u64,
    /// Heap allocations recorded during the publish+drain window.
    /// Non-zero only under a binary that registers the counting
    /// allocator (`probe` does; see `tep_bench::alloc`).
    pub allocations: u64,
    /// `allocations / events` — the per-event heap cost of the scenario.
    pub allocs_per_event: f64,
    /// Semantic cache counters sampled after the run.
    pub cache: CacheStats,
    /// Per-stage latency percentiles sampled after the run.
    pub stages: Vec<StagePercentiles>,
    /// The scenario broker's full Prometheus-text metrics export, taken
    /// after the drain (kept out of the JSON document; `probe bench`
    /// writes one scenario's export to `BENCH_metrics.prom`).
    pub prometheus: String,
}

impl ScenarioThroughput {
    /// One JSON object (no trailing newline).
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"events\":{},\"elapsed_secs\":{:.6},",
                "\"events_per_sec\":{:.1},\"match_tests\":{},\"notifications\":{},",
                "\"routing_skipped\":{},\"allocations\":{},\"allocs_per_event\":{:.2},",
                "\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_evictions\":{},\"cache_hit_rate\":{:.4},\"stages\":[{}]}}"
            ),
            self.name,
            self.events,
            self.elapsed_secs,
            self.events_per_sec,
            self.match_tests,
            self.notifications,
            self.routing_skipped,
            self.allocations,
            self.allocs_per_event,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.hit_rate(),
            self.stages
                .iter()
                .map(StagePercentiles::to_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{:<26} {:>8.0} ev/s  ({} events, {:.2}s)  tests={} skipped={} \
             allocs/ev={:.1} cache-hit={:.1}%",
            self.name,
            self.events_per_sec,
            self.events,
            self.elapsed_secs,
            self.match_tests,
            self.routing_skipped,
            self.allocs_per_event,
            self.cache.hit_rate() * 100.0,
        )
    }
}

/// Renders the scenario list as the `BENCH_throughput.json` document.
pub fn render_json(results: &[ScenarioThroughput]) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the per-scenario allocation report (`BENCH_alloc.json`, the CI
/// artifact behind the zero-alloc guarantee): heap allocations recorded
/// over each scenario's publish+drain window and the per-event ratio.
pub fn render_alloc_json(results: &[ScenarioThroughput]) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\":\"{}\",\"events\":{},\"allocations\":{},\"allocs_per_event\":{:.2}}}",
            r.name, r.events, r.allocations, r.allocs_per_event,
        ));
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Hook invoked with each scenario's broker right after the subscriptions
/// register and before the first publish — how the probe's `--serve` mode
/// points the live scrape endpoints at whichever broker is currently
/// benching. The no-op observer costs nothing.
pub type ScenarioObserver = dyn Fn(&str, &Arc<Broker>) + Sync;

/// Publishes `events` through a fresh broker `rounds` times and measures
/// the drain.
fn run_scenario<M>(
    name: &str,
    matcher: Arc<M>,
    config: BrokerConfig,
    subscriptions: &[Subscription],
    events: &[Event],
    rounds: usize,
    observer: &ScenarioObserver,
) -> ScenarioThroughput
where
    M: Matcher + Send + Sync + 'static,
{
    let broker = Arc::new(Broker::start(matcher, config));
    let receivers: Vec<_> = subscriptions
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    // Wrap once outside the timed region; each round then shares the same
    // `Arc<Event>` allocations instead of deep-cloning per publish.
    let arc_events: Vec<Arc<Event>> = events.iter().cloned().map(Arc::new).collect();
    observer(name, &broker);
    // One untimed warm-up round: the scenarios measure the steady-state
    // hot path (warm semantic caches, grown scratch buffers). Cold-start
    // behaviour is a separate eval experiment, not a throughput headline;
    // folding it into the timed window would also queue every timed event
    // behind the slow cold tests at the head of the backlog.
    for e in &arc_events {
        broker.publish_arc(Arc::clone(e)).expect("publish");
    }
    broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
    let warmup_stages = broker.stage_latencies();
    let allocs_before = crate::alloc::allocation_count();
    let start = Instant::now();
    for _ in 0..rounds {
        // A paced producer, not one mega-burst: queue_wait under a burst
        // is ~drain_time/2 of the whole backlog, so an unbounded burst
        // measures the burst size instead of the pipeline. Bounded bursts
        // keep the dequeue batching exercised while the wait histogram
        // reflects per-event pipeline latency (see DESIGN.md §15).
        for burst in arc_events.chunks(PUBLISH_BURST) {
            for e in burst {
                broker.publish_arc(Arc::clone(e)).expect("publish");
            }
            broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let allocations = crate::alloc::allocation_count().saturating_sub(allocs_before);
    let stats = broker.stats();
    let stages = stage_percentiles(&broker.stage_latencies().delta_since(&warmup_stages));
    let prometheus = broker.metrics().render_prometheus();
    for rx in &receivers {
        // Drain so the channel teardown is uniform across scenarios.
        while rx.try_recv().is_ok() {}
    }
    // An observer may still hold a clone (the scrape server keeps serving
    // the last scenario's counters); close the intake here and let the
    // final `Arc` drop join the threads.
    broker.close();
    let events_total = (events.len() * rounds) as u64;
    ScenarioThroughput {
        name: name.to_string(),
        events: events_total,
        elapsed_secs: elapsed,
        events_per_sec: events_total as f64 / elapsed,
        match_tests: stats.match_tests,
        notifications: stats.notifications,
        routing_skipped: stats.routing_skipped,
        allocations,
        allocs_per_event: allocations as f64 / events_total.max(1) as f64,
        cache: stats.semantic_cache,
        stages,
        prometheus,
    }
}

/// Runs the standard broker scenarios at the seed bench's scale:
///
/// * `seed_exact_broadcast` — exact matcher, pure middleware overhead;
/// * `seed_thematic_broadcast` — the thematic matcher against every
///   subscription (the paper's configuration, and the PR-over-PR
///   throughput headline);
/// * `thematic_theme_routed` — the same thematic matcher with
///   single-domain themes and `RoutingPolicy::ThemeOverlap`, showing what
///   theme-indexed routing saves;
/// * `faulty_exact_1pct` — the supervised-runtime overhead scenario: ~1%
///   of events panic in the matcher.
pub fn run_broker_scenarios() -> Vec<ScenarioThroughput> {
    run_broker_scenarios_observed(&|_, _| {})
}

/// [`run_broker_scenarios`] with an observer that receives each
/// scenario's live broker before its first publish.
pub fn run_broker_scenarios_observed(observer: &ScenarioObserver) -> Vec<ScenarioThroughput> {
    // The seed scenarios ran 2 workers; keep that on multi-core machines
    // but never oversubscribe a smaller one — on a single hardware thread
    // a second worker only adds context switches to every stage.
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(2);
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let domain_tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();

    let base_events: Vec<Event> = workload.events().iter().take(128).cloned().collect();
    let base_subs: Vec<Subscription> = workload.subscriptions().iter().take(8).cloned().collect();

    // Seed scenario theming: every event and subscription carries the
    // one-tag-per-domain set, exactly like the criterion broker bench.
    let themed_events: Vec<Event> = base_events
        .iter()
        .map(|e| e.with_theme_tags(domain_tags.clone()))
        .collect();
    let themed_subs: Vec<Subscription> = base_subs
        .iter()
        .map(|s| s.with_theme_tags(domain_tags.clone()))
        .collect();

    // Routed scenario theming: one domain per side, round-robin, so an
    // event overlaps ~1/6 of the subscriptions and routing has something
    // to skip.
    let routed_events: Vec<Event> = base_events
        .iter()
        .enumerate()
        .map(|(i, e)| e.with_theme_tags([domain_tags[i % domain_tags.len()].clone()]))
        .collect();
    let routed_subs: Vec<Subscription> = base_subs
        .iter()
        .enumerate()
        .map(|(i, s)| s.with_theme_tags([domain_tags[i % domain_tags.len()].clone()]))
        .collect();

    vec![
        run_scenario(
            "seed_exact_broadcast",
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default().with_workers(workers),
            &base_subs,
            &base_events,
            16,
            observer,
        ),
        run_scenario(
            "seed_thematic_broadcast",
            // The broker's production thematic configuration: score memo +
            // per-worker L1 in front of the PVSM. The uncached variant
            // recomputes a sparse euclidean distance per warm cell, which
            // is an eval configuration, not the deployed hot path.
            Arc::new(stack.thematic_cached()),
            BrokerConfig::default().with_workers(workers),
            &themed_subs,
            &themed_events,
            4,
            observer,
        ),
        run_scenario(
            "thematic_theme_routed",
            Arc::new(stack.thematic_cached()),
            BrokerConfig::default()
                .with_workers(workers)
                .with_routing_policy(RoutingPolicy::ThemeOverlap),
            &routed_subs,
            &routed_events,
            4,
            observer,
        ),
        run_scenario(
            "faulty_exact_1pct",
            Arc::new(FaultInjectingMatcher::new(
                ExactMatcher::new(),
                FaultConfig::none(0xBE7C).with_panic_rate(0.01),
            )),
            BrokerConfig::default()
                .with_workers(workers)
                .with_max_match_attempts(1),
            &base_subs,
            &base_events,
            16,
            observer,
        ),
    ]
}

/// Runs a small fully instrumented thematic broker (explanation ring on,
/// 1-in-4 span sampling) and returns the `(explanations, spans)` JSON
/// documents — the `BENCH_explain.json` / `BENCH_spans.json` artifacts.
///
/// Deliberately separate from the throughput scenarios: those run with
/// observability off so the committed perf baseline measures the
/// unobserved hot path.
pub fn instrumented_dump(observer: &ScenarioObserver) -> (String, String) {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let domain_tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();
    let events: Vec<Event> = workload
        .events()
        .iter()
        .take(32)
        .map(|e| e.with_theme_tags(domain_tags.clone()))
        .collect();
    let subs: Vec<Subscription> = workload
        .subscriptions()
        .iter()
        .take(4)
        .map(|s| s.with_theme_tags(domain_tags.clone()))
        .collect();
    let config = BrokerConfig::default()
        .with_workers(2)
        .with_explain_capacity(256)
        .with_span_sampling(4);
    let broker = Arc::new(Broker::start(Arc::new(stack.thematic()), config));
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    observer("instrumented_dump", &broker);
    for e in &events {
        broker.publish(e.clone()).expect("publish");
    }
    broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
    let explanations = render_explanations_json(&broker.explain_last(256));
    let spans = render_spans_json(&broker.spans());
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();
    (explanations, spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioThroughput {
        ScenarioThroughput {
            name: "s".into(),
            events: 10,
            elapsed_secs: 0.5,
            events_per_sec: 20.0,
            match_tests: 80,
            notifications: 3,
            routing_skipped: 2,
            allocations: 40,
            allocs_per_event: 4.0,
            cache: CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
                entries: 4,
                pinned: 0,
            },
            stages: vec![StagePercentiles {
                stage: "queue_wait".into(),
                count: 10,
                p50_ns: 1_000,
                p95_ns: 5_000,
                p99_ns: 9_000,
                max_ns: 12_000,
            }],
            prometheus: String::new(),
        }
    }

    #[test]
    fn json_is_well_formed_and_machine_readable() {
        let doc = render_json(&[sample(), sample()]);
        let parsed: serde_json::JsonValue = serde_json::from_str(&doc).expect("valid JSON");
        let root = parsed.as_map().expect("object root");
        let scenarios = serde::value_get(root, "scenarios")
            .and_then(|v| v.as_seq())
            .expect("scenario array");
        assert_eq!(scenarios.len(), 2);
        let first = scenarios[0].as_map().expect("scenario object");
        let field = |k: &str| serde::value_get(first, k).expect(k);
        assert_eq!(field("name").as_str(), Some("s"));
        assert_eq!(field("events_per_sec").as_f64(), Some(20.0));
        assert_eq!(field("cache_hits").as_u64(), Some(3));
        assert_eq!(field("cache_hit_rate").as_f64(), Some(0.75));
        assert_eq!(field("allocations").as_u64(), Some(40));
        assert_eq!(field("allocs_per_event").as_f64(), Some(4.0));
        let stages = field("stages").as_seq().expect("stage array");
        assert_eq!(stages.len(), 1);
        let stage = stages[0].as_map().expect("stage object");
        let sfield = |k: &str| serde::value_get(stage, k).expect(k);
        assert_eq!(sfield("stage").as_str(), Some("queue_wait"));
        assert_eq!(sfield("p95_ns").as_u64(), Some(5_000));
        assert_eq!(sfield("max_ns").as_u64(), Some(12_000));
    }

    #[test]
    fn alloc_report_is_valid_json_with_per_event_ratio() {
        let doc = render_alloc_json(&[sample()]);
        let parsed: serde_json::JsonValue = serde_json::from_str(&doc).expect("valid JSON");
        let root = parsed.as_map().expect("object root");
        let scenarios = serde::value_get(root, "scenarios")
            .and_then(|v| v.as_seq())
            .expect("scenario array");
        let first = scenarios[0].as_map().expect("scenario object");
        let field = |k: &str| serde::value_get(first, k).expect(k);
        assert_eq!(field("allocations").as_u64(), Some(40));
        assert_eq!(field("allocs_per_event").as_f64(), Some(4.0));
    }

    #[test]
    fn stage_summary_is_microsecond_scaled() {
        let line = sample().stages[0].summary();
        assert!(line.contains("queue_wait"));
        assert!(line.contains("p95=      5.0µs"));
    }

    #[test]
    fn summary_mentions_throughput_and_hit_rate() {
        let line = sample().summary();
        assert!(line.contains("ev/s"));
        assert!(line.contains("cache-hit=75.0%"));
    }
}
