//! The CI performance-regression gate: compares a freshly generated
//! `BENCH_throughput.json` against the committed baseline
//! (`ci/perf_baseline.json`) and reports violations.
//!
//! Two families of checks, both tolerant by design (CI machines are
//! noisy):
//!
//! * **throughput** — a scenario's events/sec may not drop more than
//!   [`GateConfig::max_drop`] below its baseline;
//! * **tail latency** — a stage's p99 may not grow past
//!   [`GateConfig::max_p99_growth`] × baseline, and only stages with
//!   enough baseline samples and a non-trivial baseline p99 are compared
//!   at all (micro-stages are pure jitter).

use serde::value_get;
use serde_json::JsonValue;

/// Thresholds for [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Maximum tolerated fractional throughput drop (0.25 = 25%).
    pub max_drop: f64,
    /// Maximum tolerated p99 growth factor (2.0 = p99 may double).
    pub max_p99_growth: f64,
    /// Stages with fewer baseline samples than this are skipped: a p99
    /// over a few hundred samples is within one order statistic of the
    /// max, i.e. pure noise.
    pub min_stage_count: u64,
    /// Stages whose baseline p99 is below this (nanoseconds) are skipped:
    /// sub-50µs tails are dominated by scheduler noise.
    pub min_p99_ns: u64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            max_drop: 0.25,
            max_p99_growth: 2.0,
            min_stage_count: 500,
            min_p99_ns: 50_000,
        }
    }
}

/// The outcome of one baseline/current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Scenarios present in the baseline and compared.
    pub scenarios_checked: usize,
    /// Stage p99 comparisons that cleared the noise floors.
    pub stages_checked: usize,
    /// Human-readable violations; empty means the gate passes.
    pub violations: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        if self.passed() {
            format!(
                "perf gate PASSED ({} scenarios, {} stage comparisons)",
                self.scenarios_checked, self.stages_checked
            )
        } else {
            format!(
                "perf gate FAILED: {} violation(s) across {} scenarios",
                self.violations.len(),
                self.scenarios_checked
            )
        }
    }
}

/// One scenario's gate-relevant numbers.
struct ScenarioNumbers {
    name: String,
    events_per_sec: f64,
    /// `(stage name, sample count, p99 nanoseconds)`.
    stages: Vec<(String, u64, u64)>,
}

fn parse_scenarios(doc: &str, label: &str) -> Result<Vec<ScenarioNumbers>, String> {
    let parsed: JsonValue =
        serde_json::from_str(doc).map_err(|e| format!("{label}: invalid JSON: {e:?}"))?;
    let root = parsed
        .as_map()
        .ok_or_else(|| format!("{label}: root is not an object"))?;
    let scenarios = value_get(root, "scenarios")
        .and_then(|v| v.as_seq())
        .ok_or_else(|| format!("{label}: missing \"scenarios\" array"))?;
    let mut out = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let obj = s
            .as_map()
            .ok_or_else(|| format!("{label}: scenario {i} is not an object"))?;
        let name = value_get(obj, "name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{label}: scenario {i} has no name"))?
            .to_string();
        let events_per_sec = value_get(obj, "events_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{label}: scenario {name:?} has no events_per_sec"))?;
        let mut stages = Vec::new();
        if let Some(list) = value_get(obj, "stages").and_then(|v| v.as_seq()) {
            for st in list {
                let Some(stage) = st.as_map() else { continue };
                let Some(stage_name) = value_get(stage, "stage").and_then(|v| v.as_str()) else {
                    continue;
                };
                let count = value_get(stage, "count")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                let p99 = value_get(stage, "p99_ns")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                stages.push((stage_name.to_string(), count, p99));
            }
        }
        out.push(ScenarioNumbers {
            name,
            events_per_sec,
            stages,
        });
    }
    Ok(out)
}

/// Compares `current` (a fresh `BENCH_throughput.json` document) against
/// `baseline` (the committed one) under `cfg`.
///
/// Every scenario in the baseline must exist in the current run; new
/// scenarios in the current run are ignored (they have no baseline to
/// regress against).
///
/// # Errors
///
/// A `String` describing the problem when either document fails to parse
/// — a malformed artifact must fail the gate loudly, not pass silently.
pub fn compare(baseline: &str, current: &str, cfg: &GateConfig) -> Result<GateReport, String> {
    let base = parse_scenarios(baseline, "baseline")?;
    let cur = parse_scenarios(current, "current")?;
    if base.is_empty() {
        return Err("baseline: no scenarios to compare against".to_string());
    }
    let mut violations = Vec::new();
    let mut stages_checked = 0usize;
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.name == b.name) else {
            violations.push(format!(
                "scenario {:?}: present in baseline but missing from the current run",
                b.name
            ));
            continue;
        };
        let floor = b.events_per_sec * (1.0 - cfg.max_drop);
        if c.events_per_sec < floor {
            violations.push(format!(
                "scenario {:?}: throughput dropped {:.1}% ({:.0} → {:.0} ev/s, limit {:.0}%)",
                b.name,
                (1.0 - c.events_per_sec / b.events_per_sec) * 100.0,
                b.events_per_sec,
                c.events_per_sec,
                cfg.max_drop * 100.0,
            ));
        }
        for (stage, count, p99) in &b.stages {
            if *count < cfg.min_stage_count || *p99 < cfg.min_p99_ns {
                continue;
            }
            let Some((_, _, cur_p99)) = c.stages.iter().find(|(s, _, _)| s == stage) else {
                continue;
            };
            stages_checked += 1;
            let ceiling = *p99 as f64 * cfg.max_p99_growth;
            if *cur_p99 as f64 > ceiling {
                violations.push(format!(
                    "scenario {:?} stage {:?}: p99 grew {:.1}x ({} ns → {} ns, limit {:.1}x)",
                    b.name,
                    stage,
                    *cur_p99 as f64 / *p99 as f64,
                    p99,
                    cur_p99,
                    cfg.max_p99_growth,
                ));
            }
        }
    }
    Ok(GateReport {
        scenarios_checked: base.len(),
        stages_checked,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ev_s: f64, p99_big: u64, p99_small: u64) -> String {
        format!(
            concat!(
                "{{\"scenarios\": [\n",
                "  {{\"name\":\"alpha\",\"events_per_sec\":{:.1},\"stages\":[\n",
                "    {{\"stage\":\"match\",\"count\":5000,\"p99_ns\":{}}},\n",
                "    {{\"stage\":\"deliver\",\"count\":12,\"p99_ns\":{}}}\n",
                "  ]}}\n",
                "]}}\n"
            ),
            ev_s, p99_big, p99_small,
        )
    }

    #[test]
    fn identical_runs_pass() {
        let d = doc(100_000.0, 200_000, 1_000);
        let report = compare(&d, &d, &GateConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.scenarios_checked, 1);
        assert_eq!(report.stages_checked, 1, "the 12-sample stage is skipped");
        assert!(report.summary().contains("PASSED"));
    }

    #[test]
    fn small_regressions_stay_within_tolerance() {
        let base = doc(100_000.0, 200_000, 1_000);
        let cur = doc(80_000.0, 350_000, 900_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert!(
            report.passed(),
            "20% drop and 1.75x p99 are tolerated: {:?}",
            report.violations
        );
    }

    #[test]
    fn doctored_throughput_regression_fails() {
        let base = doc(100_000.0, 200_000, 1_000);
        let cur = doc(50_000.0, 200_000, 1_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("throughput dropped 50.0%"));
        assert!(report.summary().contains("FAILED"));
    }

    #[test]
    fn doctored_p99_regression_fails() {
        let base = doc(100_000.0, 200_000, 1_000);
        let cur = doc(100_000.0, 600_000, 1_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("p99 grew 3.0x"));
    }

    #[test]
    fn noise_floors_skip_small_stages() {
        // The 12-sample stage regresses 900x but sits under the count
        // floor; the big stage's baseline p99 under min_p99_ns is also
        // skipped when configured higher.
        let base = doc(100_000.0, 200_000, 1_000);
        let cur = doc(100_000.0, 200_000, 900_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert!(report.passed());
        let strict = GateConfig {
            min_stage_count: 1,
            min_p99_ns: 0,
            ..GateConfig::default()
        };
        let report = compare(&base, &cur, &strict).unwrap();
        assert!(!report.passed(), "dropping the floors exposes the jump");
    }

    #[test]
    fn missing_scenario_is_a_violation() {
        let base = doc(100_000.0, 200_000, 1_000);
        let report = compare(&base, "{\"scenarios\": []}", &GateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("missing from the current run"));
    }

    #[test]
    fn malformed_documents_error_loudly() {
        let d = doc(100_000.0, 200_000, 1_000);
        assert!(compare("not json", &d, &GateConfig::default()).is_err());
        assert!(compare(&d, "{}", &GateConfig::default()).is_err());
        assert!(compare("{\"scenarios\": []}", &d, &GateConfig::default()).is_err());
    }
}
