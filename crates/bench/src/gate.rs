//! The CI performance-regression gate: compares a freshly generated
//! `BENCH_throughput.json` against the committed baseline
//! (`ci/perf_baseline.json`) and reports violations.
//!
//! Two families of checks, both tolerant by design (CI machines are
//! noisy):
//!
//! * **throughput** — a scenario's events/sec may not drop more than
//!   [`GateConfig::max_drop`] below its baseline;
//! * **tail latency** — a stage's p99 may not grow past
//!   [`GateConfig::max_p99_growth`] × baseline, and only stages with
//!   enough baseline samples and a non-trivial baseline p99 are compared
//!   at all (micro-stages are pure jitter).
//!
//! A third family, [`compare_quality`], gates the matching-quality
//! artifact (`BENCH_quality.json` vs `ci/quality_baseline.json`): a
//! scenario's live F1 may not drop more than
//! [`QualityGateConfig::max_f1_drop`] points below its baseline, and a
//! live estimate that agreed with the offline population F1 at baseline
//! must keep agreeing within its own confidence interval (scenarios that
//! disagree by construction — degraded matchers judged against full
//! ground truth — are exempt). Scenarios with too few judged samples are
//! held to neither bar — a 1-in-k estimate over a handful of samples is
//! noise, not signal.

use serde::value_get;
use serde_json::JsonValue;

/// Thresholds for [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Maximum tolerated fractional throughput drop (0.25 = 25%).
    pub max_drop: f64,
    /// Maximum tolerated p99 growth factor (2.0 = p99 may double).
    pub max_p99_growth: f64,
    /// Stages with fewer baseline samples than this are skipped: a p99
    /// over a few hundred samples is within one order statistic of the
    /// max, i.e. pure noise.
    pub min_stage_count: u64,
    /// Stages whose baseline p99 is below this (nanoseconds) are skipped:
    /// a sub-500µs tail on a burst bench is one descheduled worker away
    /// from doubling, i.e. pure scheduler noise.
    pub min_p99_ns: u64,
    /// Absolute ceiling (nanoseconds) on every current scenario's
    /// `queue_wait` p50; 0 disables. Unlike the relative checks this
    /// does not compare against the baseline: the batched hot path
    /// promises a bounded median queue wait outright, and a regressed
    /// baseline must not grandfather the regression in.
    pub max_queue_wait_p50_ns: u64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            max_drop: 0.25,
            max_p99_growth: 2.0,
            min_stage_count: 500,
            min_p99_ns: 500_000,
            max_queue_wait_p50_ns: 5_000_000,
        }
    }
}

/// The outcome of one baseline/current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Scenarios present in the baseline and compared.
    pub scenarios_checked: usize,
    /// Stage p99 comparisons that cleared the noise floors.
    pub stages_checked: usize,
    /// Human-readable violations; empty means the gate passes.
    pub violations: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        if self.passed() {
            format!(
                "perf gate PASSED ({} scenarios, {} stage comparisons)",
                self.scenarios_checked, self.stages_checked
            )
        } else {
            format!(
                "perf gate FAILED: {} violation(s) across {} scenarios",
                self.violations.len(),
                self.scenarios_checked
            )
        }
    }
}

/// One scenario's gate-relevant numbers.
struct ScenarioNumbers {
    name: String,
    events_per_sec: f64,
    /// `(stage name, sample count, p50 nanoseconds, p99 nanoseconds)`.
    stages: Vec<(String, u64, u64, u64)>,
}

fn parse_scenarios(doc: &str, label: &str) -> Result<Vec<ScenarioNumbers>, String> {
    let parsed: JsonValue =
        serde_json::from_str(doc).map_err(|e| format!("{label}: invalid JSON: {e:?}"))?;
    let root = parsed
        .as_map()
        .ok_or_else(|| format!("{label}: root is not an object"))?;
    let scenarios = value_get(root, "scenarios")
        .and_then(|v| v.as_seq())
        .ok_or_else(|| format!("{label}: missing \"scenarios\" array"))?;
    let mut out = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let obj = s
            .as_map()
            .ok_or_else(|| format!("{label}: scenario {i} is not an object"))?;
        let name = value_get(obj, "name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{label}: scenario {i} has no name"))?
            .to_string();
        let events_per_sec = value_get(obj, "events_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{label}: scenario {name:?} has no events_per_sec"))?;
        let mut stages = Vec::new();
        if let Some(list) = value_get(obj, "stages").and_then(|v| v.as_seq()) {
            for st in list {
                let Some(stage) = st.as_map() else { continue };
                let Some(stage_name) = value_get(stage, "stage").and_then(|v| v.as_str()) else {
                    continue;
                };
                let count = value_get(stage, "count")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                let p50 = value_get(stage, "p50_ns")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                let p99 = value_get(stage, "p99_ns")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                stages.push((stage_name.to_string(), count, p50, p99));
            }
        }
        out.push(ScenarioNumbers {
            name,
            events_per_sec,
            stages,
        });
    }
    Ok(out)
}

/// Compares `current` (a fresh `BENCH_throughput.json` document) against
/// `baseline` (the committed one) under `cfg`.
///
/// Every scenario in the baseline must exist in the current run; new
/// scenarios in the current run are ignored (they have no baseline to
/// regress against).
///
/// # Errors
///
/// A `String` describing the problem when either document fails to parse
/// — a malformed artifact must fail the gate loudly, not pass silently.
pub fn compare(baseline: &str, current: &str, cfg: &GateConfig) -> Result<GateReport, String> {
    let base = parse_scenarios(baseline, "baseline")?;
    let cur = parse_scenarios(current, "current")?;
    if base.is_empty() {
        return Err("baseline: no scenarios to compare against".to_string());
    }
    let mut violations = Vec::new();
    let mut stages_checked = 0usize;
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.name == b.name) else {
            violations.push(format!(
                "scenario {:?}: present in baseline but missing from the current run",
                b.name
            ));
            continue;
        };
        let floor = b.events_per_sec * (1.0 - cfg.max_drop);
        if c.events_per_sec < floor {
            violations.push(format!(
                "scenario {:?}: throughput dropped {:.1}% ({:.0} → {:.0} ev/s, limit {:.0}%)",
                b.name,
                (1.0 - c.events_per_sec / b.events_per_sec) * 100.0,
                b.events_per_sec,
                c.events_per_sec,
                cfg.max_drop * 100.0,
            ));
        }
        for (stage, count, _p50, p99) in &b.stages {
            if *count < cfg.min_stage_count || *p99 < cfg.min_p99_ns {
                continue;
            }
            let Some((_, _, _, cur_p99)) = c.stages.iter().find(|(s, _, _, _)| s == stage) else {
                continue;
            };
            stages_checked += 1;
            let ceiling = *p99 as f64 * cfg.max_p99_growth;
            if *cur_p99 as f64 > ceiling {
                violations.push(format!(
                    "scenario {:?} stage {:?}: p99 grew {:.1}x ({} ns → {} ns, limit {:.1}x)",
                    b.name,
                    stage,
                    *cur_p99 as f64 / *p99 as f64,
                    p99,
                    cur_p99,
                    cfg.max_p99_growth,
                ));
            }
        }
    }
    // The absolute queue-wait bar runs over the *current* scenarios so a
    // freshly added scenario is held to it from its first CI run.
    if cfg.max_queue_wait_p50_ns > 0 {
        for c in &cur {
            for (stage, count, p50, _) in &c.stages {
                if stage != "queue_wait" || *count < cfg.min_stage_count {
                    continue;
                }
                stages_checked += 1;
                if *p50 > cfg.max_queue_wait_p50_ns {
                    violations.push(format!(
                        "scenario {:?}: queue_wait p50 {} ns exceeds the absolute \
                         ceiling of {} ns",
                        c.name, p50, cfg.max_queue_wait_p50_ns,
                    ));
                }
            }
        }
    }
    Ok(GateReport {
        scenarios_checked: base.len(),
        stages_checked,
        violations,
    })
}

/// Thresholds for [`compare_quality`].
#[derive(Debug, Clone, PartialEq)]
pub struct QualityGateConfig {
    /// Maximum tolerated absolute live-F1 drop below baseline
    /// (0.10 = ten F1 points).
    pub max_f1_drop: f64,
    /// Scenarios with fewer judged live samples than this are skipped:
    /// a sampled F1 over a few dozen decisions swings whole points on
    /// one flipped sample.
    pub min_samples: u64,
}

impl Default for QualityGateConfig {
    fn default() -> QualityGateConfig {
        QualityGateConfig {
            max_f1_drop: 0.10,
            min_samples: 200,
        }
    }
}

/// The outcome of one quality baseline/current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityGateReport {
    /// Scenarios present in the baseline.
    pub scenarios_checked: usize,
    /// Scenarios that cleared the sample-count noise floor and were held
    /// to the F1 floor and CI-agreement bars.
    pub scenarios_gated: usize,
    /// Human-readable violations; empty means the gate passes.
    pub violations: Vec<String>,
}

impl QualityGateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        if self.passed() {
            format!(
                "quality gate PASSED ({} scenarios, {} above the sample floor)",
                self.scenarios_checked, self.scenarios_gated
            )
        } else {
            format!(
                "quality gate FAILED: {} violation(s) across {} scenarios",
                self.violations.len(),
                self.scenarios_checked
            )
        }
    }
}

/// One quality scenario's gate-relevant numbers.
struct QualityNumbers {
    name: String,
    samples: u64,
    live_f1: f64,
    /// Whether the live F1 agreed with the offline F1 within the live
    /// estimate's confidence interval. Some scenarios disagree by
    /// construction (a degraded matcher judged against full ground
    /// truth), which the baseline records — the gate only fires when
    /// agreement *regresses*.
    within_ci: bool,
}

fn parse_quality(doc: &str, label: &str) -> Result<Vec<QualityNumbers>, String> {
    let parsed: JsonValue =
        serde_json::from_str(doc).map_err(|e| format!("{label}: invalid JSON: {e:?}"))?;
    let root = parsed
        .as_map()
        .ok_or_else(|| format!("{label}: root is not an object"))?;
    let scenarios = value_get(root, "scenarios")
        .and_then(|v| v.as_seq())
        .ok_or_else(|| format!("{label}: missing \"scenarios\" array"))?;
    let mut out = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let obj = s
            .as_map()
            .ok_or_else(|| format!("{label}: scenario {i} is not an object"))?;
        let name = value_get(obj, "name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{label}: scenario {i} has no name"))?
            .to_string();
        let samples = value_get(obj, "samples")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("{label}: scenario {name:?} has no samples"))?;
        let live_f1 = value_get(obj, "live_f1")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{label}: scenario {name:?} has no live_f1"))?;
        let within_ci = value_get(obj, "within_ci")
            .and_then(|v| v.as_bool())
            .ok_or_else(|| format!("{label}: scenario {name:?} has no within_ci"))?;
        out.push(QualityNumbers {
            name,
            samples,
            live_f1,
            within_ci,
        });
    }
    Ok(out)
}

/// Compares `current` (a fresh `BENCH_quality.json` document) against
/// `baseline` (the committed `ci/quality_baseline.json`) under `cfg`.
///
/// Every scenario in the baseline must exist in the current run. The
/// noise floor is taken from the *current* run's judged sample count:
/// an under-sampled run proves nothing either way and is reported as
/// skipped rather than passed.
///
/// # Errors
///
/// A `String` when either document fails to parse — a malformed
/// artifact must fail the gate loudly, not pass silently.
pub fn compare_quality(
    baseline: &str,
    current: &str,
    cfg: &QualityGateConfig,
) -> Result<QualityGateReport, String> {
    let base = parse_quality(baseline, "baseline")?;
    let cur = parse_quality(current, "current")?;
    if base.is_empty() {
        return Err("baseline: no quality scenarios to compare against".to_string());
    }
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.name == b.name) else {
            violations.push(format!(
                "quality scenario {:?}: present in baseline but missing from the current run",
                b.name
            ));
            continue;
        };
        if c.samples < cfg.min_samples {
            continue;
        }
        checked += 1;
        let floor = b.live_f1 - cfg.max_f1_drop;
        if c.live_f1 < floor {
            violations.push(format!(
                "quality scenario {:?}: live F1 dropped {:.1} points \
                 ({:.3} → {:.3} over {} samples, limit {:.1} points)",
                b.name,
                (b.live_f1 - c.live_f1) * 100.0,
                b.live_f1,
                c.live_f1,
                c.samples,
                cfg.max_f1_drop * 100.0,
            ));
        }
        if b.within_ci && !c.within_ci {
            violations.push(format!(
                "quality scenario {:?}: live F1 {:.3} disagrees with the offline F1 \
                 beyond its confidence interval ({} samples)",
                b.name, c.live_f1, c.samples,
            ));
        }
    }
    Ok(QualityGateReport {
        scenarios_checked: base.len(),
        scenarios_gated: checked,
        violations,
    })
}

/// Thresholds for [`compare_subindex`].
#[derive(Debug, Clone, PartialEq)]
pub struct SubindexGateConfig {
    /// Maximum tolerated fractional drop of the large-population
    /// events/sec below its baseline (0.25 = 25%).
    pub max_drop: f64,
    /// Absolute floor on `ratio_vs_small` (large ev/s over small ev/s).
    /// Unlike the relative check this never moves with the baseline:
    /// the subscription index promises that a million subscribers cost
    /// at most 2× the thousand-subscriber rate, outright.
    pub min_ratio: f64,
}

impl Default for SubindexGateConfig {
    fn default() -> SubindexGateConfig {
        SubindexGateConfig {
            max_drop: 0.25,
            min_ratio: 0.5,
        }
    }
}

/// One population's gate-relevant numbers from `BENCH_subindex.json`.
struct SubindexNumbers {
    subscribers: u64,
    index_entries: u64,
    events_per_sec: f64,
}

fn parse_subindex(doc: &str, label: &str) -> Result<(SubindexNumbers, SubindexNumbers), String> {
    let parsed: JsonValue =
        serde_json::from_str(doc).map_err(|e| format!("{label}: invalid JSON: {e:?}"))?;
    let root = parsed
        .as_map()
        .ok_or_else(|| format!("{label}: root is not an object"))?;
    let mut runs = Vec::new();
    for key in ["small", "large"] {
        let obj = value_get(root, key)
            .and_then(|v| v.as_map())
            .ok_or_else(|| format!("{label}: missing {key:?} object"))?;
        let field = |name: &str| {
            value_get(obj, name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{label}: {key}.{name} missing"))
        };
        runs.push(SubindexNumbers {
            subscribers: field("subscribers")? as u64,
            index_entries: field("index_entries")? as u64,
            events_per_sec: field("events_per_sec")?,
        });
    }
    let large = runs.pop().expect("two runs");
    let small = runs.pop().expect("two runs");
    Ok((small, large))
}

/// Compares `current` (a fresh `BENCH_subindex.json`) against `baseline`
/// (the committed section of `ci/perf_baseline.json`'s sibling document)
/// under `cfg`:
///
/// * the large population may not shrink (no gaming the scenario down),
/// * its hash-consed entry count must equal the baseline's (a changed
///   pool or broken aggregation shows up as an entry-count drift),
/// * its events/sec may not drop more than [`SubindexGateConfig::max_drop`],
/// * and the large/small throughput ratio must clear the absolute
///   [`SubindexGateConfig::min_ratio`] floor.
///
/// # Errors
///
/// A `String` when either document fails to parse — a malformed
/// artifact must fail the gate loudly, not pass silently.
pub fn compare_subindex(
    baseline: &str,
    current: &str,
    cfg: &SubindexGateConfig,
) -> Result<GateReport, String> {
    let (_, base_large) = parse_subindex(baseline, "baseline")?;
    let (cur_small, cur_large) = parse_subindex(current, "current")?;
    let mut violations = Vec::new();
    if cur_large.subscribers < base_large.subscribers {
        violations.push(format!(
            "subindex: large population shrank ({} → {} subscribers)",
            base_large.subscribers, cur_large.subscribers,
        ));
    }
    if cur_large.index_entries != base_large.index_entries {
        violations.push(format!(
            "subindex: hash-consed entry count drifted ({} → {})",
            base_large.index_entries, cur_large.index_entries,
        ));
    }
    let floor = base_large.events_per_sec * (1.0 - cfg.max_drop);
    if cur_large.events_per_sec < floor {
        violations.push(format!(
            "subindex: {}-subscriber throughput dropped {:.1}% ({:.0} → {:.0} ev/s, limit {:.0}%)",
            cur_large.subscribers,
            (1.0 - cur_large.events_per_sec / base_large.events_per_sec) * 100.0,
            base_large.events_per_sec,
            cur_large.events_per_sec,
            cfg.max_drop * 100.0,
        ));
    }
    let ratio = if cur_small.events_per_sec > 0.0 {
        cur_large.events_per_sec / cur_small.events_per_sec
    } else {
        0.0
    };
    if ratio < cfg.min_ratio {
        violations.push(format!(
            "subindex: large/small throughput ratio {:.3} below the absolute floor {:.2} \
             ({:.0} ev/s at {} subscribers vs {:.0} ev/s at {})",
            ratio,
            cfg.min_ratio,
            cur_large.events_per_sec,
            cur_large.subscribers,
            cur_small.events_per_sec,
            cur_small.subscribers,
        ));
    }
    Ok(GateReport {
        scenarios_checked: 2,
        stages_checked: 0,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ev_s: f64, p99_big: u64, p99_small: u64) -> String {
        doc_with_queue_wait(ev_s, p99_big, p99_small, 1_000_000)
    }

    fn doc_with_queue_wait(ev_s: f64, p99_big: u64, p99_small: u64, qw_p50: u64) -> String {
        format!(
            concat!(
                "{{\"scenarios\": [\n",
                "  {{\"name\":\"alpha\",\"events_per_sec\":{:.1},\"stages\":[\n",
                "    {{\"stage\":\"queue_wait\",\"count\":5000,\"p50_ns\":{},\"p99_ns\":{}}},\n",
                "    {{\"stage\":\"match\",\"count\":5000,\"p99_ns\":{}}},\n",
                "    {{\"stage\":\"deliver\",\"count\":12,\"p99_ns\":{}}}\n",
                "  ]}}\n",
                "]}}\n"
            ),
            ev_s,
            qw_p50,
            // Pinned p99 so varying the p50 exercises only the absolute
            // ceiling, never the relative growth check.
            10_000_000u64,
            p99_big,
            p99_small,
        )
    }

    #[test]
    fn identical_runs_pass() {
        let d = doc(100_000.0, 2_000_000, 10_000);
        let report = compare(&d, &d, &GateConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.scenarios_checked, 1);
        // match + queue_wait relative checks, plus the absolute
        // queue_wait ceiling; the 12-sample deliver stage is skipped.
        assert_eq!(report.stages_checked, 3);
        assert!(report.summary().contains("PASSED"));
    }

    #[test]
    fn small_regressions_stay_within_tolerance() {
        let base = doc(100_000.0, 2_000_000, 10_000);
        let cur = doc(80_000.0, 3_500_000, 9_000_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert!(
            report.passed(),
            "20% drop and 1.75x p99 are tolerated: {:?}",
            report.violations
        );
    }

    #[test]
    fn doctored_throughput_regression_fails() {
        let base = doc(100_000.0, 2_000_000, 10_000);
        let cur = doc(50_000.0, 2_000_000, 10_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("throughput dropped 50.0%"));
        assert!(report.summary().contains("FAILED"));
    }

    #[test]
    fn doctored_p99_regression_fails() {
        let base = doc(100_000.0, 2_000_000, 10_000);
        let cur = doc(100_000.0, 6_000_000, 10_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("p99 grew 3.0x"));
    }

    #[test]
    fn noise_floors_skip_small_stages() {
        // The 12-sample stage regresses 900x but sits under the count
        // floor; the big stage's baseline p99 under min_p99_ns is also
        // skipped when configured higher.
        let base = doc(100_000.0, 2_000_000, 10_000);
        let cur = doc(100_000.0, 2_000_000, 9_000_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert!(report.passed());
        let strict = GateConfig {
            min_stage_count: 1,
            min_p99_ns: 0,
            ..GateConfig::default()
        };
        let report = compare(&base, &cur, &strict).unwrap();
        assert!(!report.passed(), "dropping the floors exposes the jump");
    }

    #[test]
    fn queue_wait_p50_over_the_absolute_ceiling_fails() {
        // Identical runs, so every relative check passes — only the
        // absolute ceiling can fire, and it judges the current run.
        let base = doc_with_queue_wait(100_000.0, 2_000_000, 10_000, 1_000_000);
        let cur = doc_with_queue_wait(100_000.0, 2_000_000, 10_000, 6_000_000);
        let report = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("queue_wait p50 6000000 ns exceeds"));
        // A regressed baseline must not grandfather the regression in.
        let report = compare(&cur, &cur, &GateConfig::default()).unwrap();
        assert!(!report.passed());
    }

    #[test]
    fn queue_wait_ceiling_can_be_disabled() {
        let base = doc_with_queue_wait(100_000.0, 2_000_000, 10_000, 1_000_000);
        let cur = doc_with_queue_wait(100_000.0, 2_000_000, 10_000, 6_000_000);
        let off = GateConfig {
            max_queue_wait_p50_ns: 0,
            ..GateConfig::default()
        };
        let report = compare(&base, &cur, &off).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn missing_scenario_is_a_violation() {
        let base = doc(100_000.0, 2_000_000, 10_000);
        let report = compare(&base, "{\"scenarios\": []}", &GateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("missing from the current run"));
    }

    #[test]
    fn malformed_documents_error_loudly() {
        let d = doc(100_000.0, 2_000_000, 10_000);
        assert!(compare("not json", &d, &GateConfig::default()).is_err());
        assert!(compare(&d, "{}", &GateConfig::default()).is_err());
        assert!(compare("{\"scenarios\": []}", &d, &GateConfig::default()).is_err());
    }

    fn quality_doc(f1: f64, samples: u64, within_ci: bool) -> String {
        format!(
            concat!(
                "{{\"scenarios\": [\n",
                "  {{\"name\":\"q\",\"sample_every\":100,\"samples\":{},",
                "\"unknown\":0,\"live_precision\":0.9,\"live_recall\":0.9,",
                "\"live_f1\":{:.6},\"live_f1_ci_lo\":0.8,\"live_f1_ci_hi\":0.95,",
                "\"offline_precision\":0.9,\"offline_recall\":0.9,",
                "\"offline_f1\":{:.6},\"f1_gap\":0.0,\"within_ci\":{},",
                "\"drift_alerts\":0}}\n",
                "]}}\n"
            ),
            samples, f1, f1, within_ci,
        )
    }

    #[test]
    fn identical_quality_runs_pass() {
        let d = quality_doc(0.9, 300, true);
        let report = compare_quality(&d, &d, &QualityGateConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.scenarios_checked, 1);
        assert_eq!(report.scenarios_gated, 1);
        assert!(report.summary().contains("quality gate PASSED"));
    }

    #[test]
    fn small_f1_dips_stay_within_tolerance() {
        let base = quality_doc(0.90, 300, true);
        let cur = quality_doc(0.82, 300, true);
        let report = compare_quality(&base, &cur, &QualityGateConfig::default()).unwrap();
        assert!(report.passed(), "an 8-point dip is tolerated");
    }

    #[test]
    fn doctored_f1_collapse_fails() {
        let base = quality_doc(0.90, 300, true);
        let cur = quality_doc(0.70, 300, true);
        let report = compare_quality(&base, &cur, &QualityGateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("live F1 dropped 20.0 points"));
        assert!(report.summary().contains("quality gate FAILED"));
    }

    #[test]
    fn ci_disagreement_fails() {
        let base = quality_doc(0.90, 300, true);
        let cur = quality_doc(0.90, 300, false);
        let report = compare_quality(&base, &cur, &QualityGateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("beyond its confidence interval"));
    }

    #[test]
    fn baseline_ci_disagreement_is_exempt() {
        // A scenario that already disagreed with the offline F1 at
        // baseline time disagrees by construction (e.g. a degraded
        // matcher judged against full ground truth) — still holding it
        // to the agreement bar would make the gate permanently red.
        let base = quality_doc(0.90, 300, false);
        let cur = quality_doc(0.90, 300, false);
        let report = compare_quality(&base, &cur, &QualityGateConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn under_sampled_scenarios_are_skipped_not_gated() {
        // 50 samples is under the 200-sample floor: even a huge drop
        // plus a CI flag proves nothing, so the gate must not fire.
        let base = quality_doc(0.90, 300, true);
        let cur = quality_doc(0.50, 50, false);
        let report = compare_quality(&base, &cur, &QualityGateConfig::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.scenarios_gated, 0);
    }

    #[test]
    fn missing_quality_scenario_is_a_violation() {
        let base = quality_doc(0.90, 300, true);
        let report =
            compare_quality(&base, "{\"scenarios\": []}", &QualityGateConfig::default()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("missing from the current run"));
    }

    #[test]
    fn malformed_quality_documents_error_loudly() {
        let d = quality_doc(0.9, 300, true);
        let cfg = QualityGateConfig::default();
        assert!(compare_quality("not json", &d, &cfg).is_err());
        assert!(compare_quality(&d, "{}", &cfg).is_err());
        assert!(compare_quality("{\"scenarios\": []}", &d, &cfg).is_err());
        // A scenario without the quality fields is malformed, not skipped.
        let perf_shaped = doc(100_000.0, 2_000_000, 10_000);
        assert!(compare_quality(&perf_shaped, &d, &cfg).is_err());
    }

    fn subindex_doc(subs: u64, entries: u64, small_evs: f64, large_evs: f64) -> String {
        format!(
            concat!(
                "{{\n  \"small\": {{\"subscribers\":1000,\"index_entries\":{entries},",
                "\"distinct_subscriptions\":{entries},\"events\":2048,",
                "\"elapsed_secs\":1.0,\"events_per_sec\":{small},\"match_tests\":100,",
                "\"match_tests_per_event\":256.0,\"covered_skips\":10,",
                "\"notifications\":5}},\n  \"large\": {{\"subscribers\":{subs},",
                "\"index_entries\":{entries},\"distinct_subscriptions\":{entries},",
                "\"events\":2048,\"elapsed_secs\":1.0,\"events_per_sec\":{large},",
                "\"match_tests\":100,\"match_tests_per_event\":256.0,",
                "\"covered_skips\":10,\"notifications\":5}},\n",
                "  \"ratio_vs_small\": {ratio:.4}\n}}\n"
            ),
            subs = subs,
            entries = entries,
            small = small_evs,
            large = large_evs,
            ratio = large_evs / small_evs,
        )
    }

    #[test]
    fn subindex_gate_passes_identical_documents() {
        let d = subindex_doc(1_000_000, 512, 100_000.0, 90_000.0);
        let report = compare_subindex(&d, &d, &SubindexGateConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn subindex_gate_catches_throughput_and_ratio_regressions() {
        let cfg = SubindexGateConfig::default();
        let base = subindex_doc(1_000_000, 512, 100_000.0, 90_000.0);
        // Large-population rate collapsed: both the relative drop and the
        // absolute large/small ratio floor fire.
        let bad = subindex_doc(1_000_000, 512, 100_000.0, 40_000.0);
        let report = compare_subindex(&base, &bad, &cfg).unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.contains("dropped")));
        assert!(report.violations.iter().any(|v| v.contains("ratio")));
        // Within tolerance and above the ratio floor: passes.
        let ok = subindex_doc(1_000_000, 512, 100_000.0, 80_000.0);
        assert!(compare_subindex(&base, &ok, &cfg).unwrap().passed());
    }

    #[test]
    fn subindex_gate_catches_entry_drift_and_shrunk_populations() {
        let cfg = SubindexGateConfig::default();
        let base = subindex_doc(1_000_000, 512, 100_000.0, 90_000.0);
        let drifted = subindex_doc(1_000_000, 700, 100_000.0, 90_000.0);
        let report = compare_subindex(&base, &drifted, &cfg).unwrap();
        assert!(report.violations.iter().any(|v| v.contains("drifted")));
        let shrunk = subindex_doc(10_000, 512, 100_000.0, 90_000.0);
        let report = compare_subindex(&base, &shrunk, &cfg).unwrap();
        assert!(report.violations.iter().any(|v| v.contains("shrank")));
    }

    #[test]
    fn malformed_subindex_documents_error_loudly() {
        let d = subindex_doc(1_000_000, 512, 100_000.0, 90_000.0);
        let cfg = SubindexGateConfig::default();
        assert!(compare_subindex("not json", &d, &cfg).is_err());
        assert!(compare_subindex(&d, "{}", &cfg).is_err());
    }
}
