//! Million-subscriber aggregation benchmark → `BENCH_subindex.json`.
//!
//! The subscription index hash-conses duplicate subscriptions onto shared
//! entries, so dispatch cost scales with **distinct** subscriptions, not
//! registered ones. This scenario demonstrates exactly that: a fixed pool
//! of distinct predicate sets (half of them exact-subset covering pairs)
//! is cycled over the subscriber count, and the same event stream is
//! dispatched at 1 000 and at 1 000 000 subscribers. Both populations
//! collapse to the same index entries, so match tests per event — and,
//! to within delivery fan-out on the rare hits, events/sec — should be
//! nearly identical. The paired runs make the claim machine-checkable:
//! `ratio_vs_small < 1` quantifies the residual large-population cost and
//! `ci/perf_gate.sh` holds the floor at 0.5×.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tep::prelude::*;

/// Distinct predicate sets in the pool: `POOL_BASES` single-predicate
/// sets plus one two-predicate superset of each (the covering pairs).
const POOL_BASES: usize = 256;

/// Theme tags cycled across the pool (with a theme-less stride mixed in)
/// so the index carries themed and broadcast entries alike.
const THEME_POOL: [&str; 8] = [
    "power",
    "transport",
    "water",
    "networking",
    "lighting",
    "parking",
    "waste",
    "safety",
];

/// Timed events per measured run.
const EVENTS: usize = 2_048;

/// Events per publish burst (same pacing rationale as the throughput
/// scenarios; see DESIGN.md §15).
const BURST: usize = 128;

/// Every `HIT_STRIDE`-th event matches exactly one single-predicate pool
/// entry; everything else misses the entire index. Low on purpose: the
/// scenario measures match-test scaling, and a hit at 10⁶ subscribers
/// fans out to ~2 000 deliveries on its own.
const HIT_STRIDE: usize = 64;

/// Backlog drain deadline; generous for slow CI machines.
const FLUSH_DEADLINE: Duration = Duration::from_secs(300);

/// One subscriber-scale measurement of the aggregation scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SubindexRun {
    /// Registered subscriptions.
    pub subscribers: u64,
    /// Hash-consed index entries actually serving dispatch.
    pub index_entries: u64,
    /// Distinct predicate sets among the subscribers.
    pub distinct_subscriptions: u64,
    /// Events published in the timed window.
    pub events: u64,
    /// Wall-clock seconds for the timed window.
    pub elapsed_secs: f64,
    /// `events / elapsed_secs`.
    pub events_per_sec: f64,
    /// Match tests executed in the timed window.
    pub match_tests: u64,
    /// `match_tests / events` — must track `index_entries`, not
    /// `subscribers`, or aggregation is broken.
    pub match_tests_per_event: f64,
    /// Candidate entries skipped by covering edges in the timed window.
    pub covered_skips: u64,
    /// Notifications delivered in the timed window.
    pub notifications: u64,
}

impl SubindexRun {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"subscribers\":{},\"index_entries\":{},",
                "\"distinct_subscriptions\":{},\"events\":{},",
                "\"elapsed_secs\":{:.6},\"events_per_sec\":{:.1},",
                "\"match_tests\":{},\"match_tests_per_event\":{:.2},",
                "\"covered_skips\":{},\"notifications\":{}}}"
            ),
            self.subscribers,
            self.index_entries,
            self.distinct_subscriptions,
            self.events,
            self.elapsed_secs,
            self.events_per_sec,
            self.match_tests,
            self.match_tests_per_event,
            self.covered_skips,
            self.notifications,
        )
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "subscribers_{:<9} {:>8.0} ev/s  entries={} tests/ev={:.1} \
             covered={} notifications={}",
            self.subscribers,
            self.events_per_sec,
            self.index_entries,
            self.match_tests_per_event,
            self.covered_skips,
            self.notifications,
        )
    }
}

/// The paired small/large measurement written to `BENCH_subindex.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubindexReport {
    /// The small-population reference run (1 000 subscribers).
    pub small: SubindexRun,
    /// The large-population run (1 000 000 subscribers by default;
    /// `TEP_SUBINDEX_SUBSCRIBERS` overrides for quick local iteration).
    pub large: SubindexRun,
}

impl SubindexReport {
    /// `large.events_per_sec / small.events_per_sec` — 1.0 means the
    /// extra 999 000 subscribers were free, the gate floor is 0.5.
    pub fn ratio_vs_small(&self) -> f64 {
        if self.small.events_per_sec <= 0.0 {
            return 0.0;
        }
        self.large.events_per_sec / self.small.events_per_sec
    }

    /// Renders the `BENCH_subindex.json` document.
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"small\": {},\n  \"large\": {},\n  \"ratio_vs_small\": {:.4}\n}}\n",
            self.small.to_json(),
            self.large.to_json(),
            self.ratio_vs_small(),
        )
    }
}

/// The distinct subscription pool, built once and shared by reference
/// (`Arc`) across every registration that reuses an element — a million
/// registrations hold `2 × POOL_BASES` subscription allocations.
fn subscription_pool() -> Vec<Arc<Subscription>> {
    let mut pool = Vec::with_capacity(POOL_BASES * 2);
    for i in 0..POOL_BASES {
        // Every third base is theme-less (stays in the broadcast set);
        // the rest cycle the theme pool.
        let mut base = Subscription::builder();
        let mut cover = Subscription::builder();
        if i % 3 != 0 {
            let tag = THEME_POOL[i % THEME_POOL.len()];
            base = base.theme_tag(tag);
            cover = cover.theme_tag(tag);
        }
        let attr = format!("sensor{i}");
        pool.push(Arc::new(
            base.predicate_exact(&attr, "alert")
                .build()
                .expect("pool subscription"),
        ));
        // The exact superset: same predicate plus one more, same theme —
        // a live covering edge from the base entry.
        pool.push(Arc::new(
            cover
                .predicate_exact(&attr, "alert")
                .predicate_exact(&format!("zone{i}"), "north")
                .build()
                .expect("pool subscription"),
        ));
    }
    pool
}

/// The event stream: `1/HIT_STRIDE` of events match one single-predicate
/// entry, the rest miss every entry in the index.
fn event_stream() -> Vec<Arc<Event>> {
    (0..EVENTS)
        .map(|i| {
            let mut b = Event::builder()
                .theme_tag(THEME_POOL[i % THEME_POOL.len()])
                .tuple("seq", &format!("n{i}"));
            if i % HIT_STRIDE == 0 {
                let hit = (i / HIT_STRIDE) % POOL_BASES;
                b = b.tuple(&format!("sensor{hit}"), "alert");
            } else {
                b = b.tuple("sensor-none", "quiet");
            }
            Arc::new(b.build().expect("bench event"))
        })
        .collect()
}

/// Runs one population size: registers `subscribers` by cycling the
/// pool, warms the caches and scratch buffers, then times the stream.
fn run_population(subscribers: usize, events: &[Arc<Event>]) -> SubindexRun {
    // A bounded crossbeam channel preallocates its ring: at 10⁶
    // subscribers the default 4096-slot capacity would be hundreds of
    // gigabytes. The scenario drains receivers after the run, and the
    // default drop-oldest subscriber policy keeps full channels cheap.
    let config = BrokerConfig {
        notification_capacity: 8,
        ..BrokerConfig::default()
    };
    let broker = Arc::new(Broker::start(Arc::new(ExactMatcher::new()), config));
    let pool = subscription_pool();
    let receivers: Vec<_> = (0..subscribers)
        .map(|i| {
            broker
                .subscribe_arc(Arc::clone(&pool[i % pool.len()]))
                .expect("subscribe")
                .1
        })
        .collect();

    // Untimed warm-up: grows the per-worker dispatch scratch to the
    // index high-water mark and seeds the theme front cache.
    for e in events.iter().take(BURST) {
        broker.publish_arc(Arc::clone(e)).expect("publish");
    }
    broker.flush_timeout(FLUSH_DEADLINE).expect("warmup flush");

    let before = broker.stats();
    let start = Instant::now();
    for burst in events.chunks(BURST) {
        for e in burst {
            broker.publish_arc(Arc::clone(e)).expect("publish");
        }
        broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let stats = broker.stats();
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();

    let events_total = events.len() as u64;
    let match_tests = stats.match_tests - before.match_tests;
    SubindexRun {
        subscribers: subscribers as u64,
        index_entries: stats.index_entries,
        distinct_subscriptions: stats.distinct_subscriptions,
        events: events_total,
        elapsed_secs: elapsed,
        events_per_sec: events_total as f64 / elapsed,
        match_tests,
        match_tests_per_event: match_tests as f64 / events_total.max(1) as f64,
        covered_skips: stats.covered_skips - before.covered_skips,
        notifications: stats.notifications - before.notifications,
    }
}

/// Large-population subscriber count: 1 000 000, or the
/// `TEP_SUBINDEX_SUBSCRIBERS` override (for quick local iteration).
pub fn large_population() -> usize {
    std::env::var("TEP_SUBINDEX_SUBSCRIBERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1_000_000)
}

/// Runs the paired 1k / 1M measurement.
pub fn run_subindex_scenarios() -> SubindexReport {
    let events = event_stream();
    let small = run_population(1_000, &events);
    let large = run_population(large_population(), &events);
    SubindexReport { small, large }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_distinct_and_paired() {
        let pool = subscription_pool();
        assert_eq!(pool.len(), POOL_BASES * 2);
        for pair in pool.chunks(2) {
            assert_eq!(pair[0].predicates().len(), 1);
            assert_eq!(pair[1].predicates().len(), 2);
            // The superset shares the base predicate and the theme, so
            // the index links them with a covering edge.
            assert_eq!(
                pair[0].predicates()[0].attribute(),
                pair[1].predicates()[0].attribute()
            );
            assert_eq!(pair[0].theme_tags(), pair[1].theme_tags());
        }
    }

    #[test]
    fn tiny_population_pair_holds_the_aggregation_invariants() {
        // A miniature of the real scenario (fast enough for tier-1): the
        // same stream at 100 and at 2 000 subscribers must collapse to
        // the identical entry set and match-test count.
        let events: Vec<Arc<Event>> = event_stream().into_iter().take(256).collect();
        let small = run_population(100, &events);
        let large = run_population(2_000, &events);
        assert_eq!(small.index_entries, 100);
        assert_eq!(large.index_entries, POOL_BASES as u64 * 2);
        assert_eq!(large.distinct_subscriptions, POOL_BASES as u64 * 2);
        assert!(
            large.match_tests_per_event <= large.index_entries as f64,
            "tests per event ({}) must be bounded by entries ({})",
            large.match_tests_per_event,
            large.index_entries
        );
        // Covering fires: every miss on a base entry prunes its superset.
        assert!(large.covered_skips > 0, "covering edges never fired");
    }
}
