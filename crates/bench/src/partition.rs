//! Data-driven theme partition planner (`probe partition-plan`).
//!
//! Consumes the broker's per-theme cost table (`Broker::costs().themes`)
//! and emits a greedy balanced N-way theme-partition map: which
//! themes a hypothetical N-broker deployment should pin to which shard so
//! that measured matching + delivery cost — not theme *count* — is what
//! gets balanced.
//!
//! The packing is longest-processing-time (LPT) greedy: themes sorted by
//! cost descending, each assigned to the currently lightest shard. Graham
//! 1969 bounds the resulting makespan at `(4/3 − 1/(3N)) × OPT`, and
//! since `OPT ≥ max(mean load, heaviest theme)` the plan checks its own
//! prediction against that certificate — a violation means the planner
//! itself is buggy, not that the workload is hard.

/// One planned shard: its themes and predicted load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionBin {
    /// Shard number, `0..parts`.
    pub part: usize,
    /// Predicted sampled nanoseconds this shard absorbs.
    pub total_ns: u64,
    /// `(theme, sampled ns)` pairs pinned to this shard, heaviest first.
    pub themes: Vec<(String, u64)>,
}

/// A greedy balanced N-way theme-partition map.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// Requested shard count (≥ 1).
    pub parts: usize,
    /// Total sampled nanoseconds across every theme.
    pub total_ns: u64,
    /// The shards, ordered by part number.
    pub bins: Vec<PartitionBin>,
    /// Predicted imbalance factor: heaviest shard ÷ mean shard load
    /// (1.0 = perfectly balanced; 0.0 when there is no load at all).
    pub imbalance: f64,
    /// Graham's LPT approximation factor for this `parts`:
    /// `4/3 − 1/(3·parts)`.
    pub lpt_bound: f64,
    /// Whether the heaviest shard respects the LPT certificate
    /// `max ≤ bound × max(mean, heaviest theme)`.
    pub within_bound: bool,
}

/// Packs `theme_costs` into `parts` shards with LPT greedy. Themes with
/// zero measured cost still get assigned (round-robin onto the lightest
/// shard) so the map is total. Ties break deterministically by theme
/// name, so the same cost table always yields the same plan.
pub fn plan_partitions(theme_costs: &[(String, u64)], parts: usize) -> PartitionPlan {
    let parts = parts.max(1);
    let mut sorted: Vec<(String, u64)> = theme_costs.to_vec();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut bins: Vec<PartitionBin> = (0..parts)
        .map(|part| PartitionBin {
            part,
            total_ns: 0,
            themes: Vec::new(),
        })
        .collect();
    let heaviest_theme = sorted.first().map_or(0, |(_, ns)| *ns);
    for (theme, ns) in sorted {
        // Lightest shard wins; equal loads fall to the lowest part
        // number, which keeps the plan deterministic.
        let bin = bins
            .iter_mut()
            .min_by_key(|b| (b.total_ns, b.part))
            .expect("parts >= 1");
        bin.total_ns += ns;
        bin.themes.push((theme, ns));
    }
    let total_ns: u64 = bins.iter().map(|b| b.total_ns).sum();
    let max_ns = bins.iter().map(|b| b.total_ns).max().unwrap_or(0);
    let mean = total_ns as f64 / parts as f64;
    let imbalance = if mean > 0.0 {
        max_ns as f64 / mean
    } else {
        0.0
    };
    let lpt_bound = 4.0 / 3.0 - 1.0 / (3.0 * parts as f64);
    // OPT can never beat the mean load or the single heaviest theme;
    // LPT promises max ≤ bound × OPT, so this is a sound self-check.
    let opt_floor = mean.max(heaviest_theme as f64);
    let within_bound = max_ns as f64 <= lpt_bound * opt_floor + 1e-9 || total_ns == 0;
    PartitionPlan {
        parts,
        total_ns,
        bins,
        imbalance,
        lpt_bound,
        within_bound,
    }
}

impl PartitionPlan {
    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "partition plan: {} themes over {} shards, imbalance {:.3} \
             (LPT bound {:.3}, certificate {})",
            self.bins.iter().map(|b| b.themes.len()).sum::<usize>(),
            self.parts,
            self.imbalance,
            self.lpt_bound,
            if self.within_bound { "ok" } else { "VIOLATED" },
        )
    }

    /// The machine-readable `BENCH_partition_plan.json` document.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"parts\": {},", self.parts);
        let _ = writeln!(out, "  \"total_ns\": {},", self.total_ns);
        let _ = writeln!(out, "  \"imbalance\": {:.6},", self.imbalance);
        let _ = writeln!(out, "  \"lpt_bound\": {:.6},", self.lpt_bound);
        let _ = writeln!(out, "  \"within_bound\": {},", self.within_bound);
        out.push_str("  \"bins\": [\n");
        for (i, bin) in self.bins.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"part\": {}, \"total_ns\": {}, \"themes\": [",
                bin.part, bin.total_ns
            );
            for (j, (theme, ns)) in bin.themes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", \"ns\": {ns}}}",
                    theme.replace('\\', "\\\\").replace('"', "\\\"")
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.bins.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(raw: &[(&str, u64)]) -> Vec<(String, u64)> {
        raw.iter().map(|(n, c)| (n.to_string(), *c)).collect()
    }

    #[test]
    fn lpt_balances_the_classic_example() {
        // 7 jobs on 3 machines: LPT places them 12/15/12 (OPT is 13),
        // inside Graham's 4/3 − 1/9 factor of the mean-load floor.
        let plan = plan_partitions(
            &costs(&[
                ("a", 7),
                ("b", 7),
                ("c", 6),
                ("d", 6),
                ("e", 5),
                ("f", 4),
                ("g", 4),
            ]),
            3,
        );
        assert_eq!(plan.total_ns, 39);
        let max = plan.bins.iter().map(|b| b.total_ns).max().unwrap();
        assert_eq!(max, 15, "deterministic LPT outcome");
        assert!(plan.within_bound);
        assert!(plan.imbalance >= 1.0);
        assert!(plan.imbalance <= plan.lpt_bound);
    }

    #[test]
    fn every_theme_lands_in_exactly_one_bin() {
        let input = costs(&[("x", 10), ("y", 0), ("z", 3)]);
        let plan = plan_partitions(&input, 2);
        let mut seen: Vec<&str> = plan
            .bins
            .iter()
            .flat_map(|b| b.themes.iter().map(|(n, _)| n.as_str()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec!["x", "y", "z"]);
    }

    #[test]
    fn plan_is_deterministic_under_cost_ties() {
        let input = costs(&[("b", 5), ("a", 5), ("d", 5), ("c", 5)]);
        let first = plan_partitions(&input, 2);
        let second = plan_partitions(&input, 2);
        assert_eq!(first, second);
        // Ties sort by name, so 'a' is placed first.
        assert_eq!(first.bins[0].themes[0].0, "a");
    }

    #[test]
    fn empty_and_degenerate_inputs_stay_sane() {
        let empty = plan_partitions(&[], 4);
        assert_eq!(empty.total_ns, 0);
        assert_eq!(empty.imbalance, 0.0);
        assert!(empty.within_bound);
        // One indivisible theme on many shards: the certificate compares
        // against the heaviest-theme floor instead of flagging a bogus
        // violation.
        let single = plan_partitions(&costs(&[("only", 100)]), 4);
        assert!(single.within_bound);
        assert_eq!(plan_partitions(&costs(&[("t", 1)]), 0).parts, 1);
    }

    #[test]
    fn render_json_carries_the_full_map() {
        let plan = plan_partitions(&costs(&[("hot", 8), ("warm", 2)]), 2);
        let json = plan.render_json();
        assert!(json.contains("\"parts\": 2"));
        assert!(json.contains("\"name\": \"hot\", \"ns\": 8"));
        assert!(json.contains("\"within_bound\": true"));
    }
}
