//! Live-vs-offline matching-quality scenarios with machine-readable
//! output.
//!
//! `probe bench` runs these and writes `BENCH_quality.json`: each
//! scenario publishes a workload slice through a broker whose shadow
//! quality sampler (1-in-k, judged by a [`GroundTruthOracle`]) tracks
//! live precision/recall/F1, then replays the *same* subscription ×
//! event pairs through the *same* matcher offline and pools the judged
//! decisions into the population confusion matrix. The live sampled F1
//! is an unbiased estimator of the offline F1, so the two must agree
//! within the live estimate's confidence interval — at 1-in-1 sampling
//! they are exactly equal. `ci/perf_gate.sh` holds the gate
//! ([`crate::gate::compare_quality`]) to that property.

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;
use tep_eval::metrics::thresholded_effectiveness;
use tep_eval::{EvalConfig, GroundTruthOracle, MatcherStack, Workload};

use crate::throughput::ScenarioObserver;

/// Same generous drain deadline as the throughput scenarios.
const FLUSH_DEADLINE: Duration = Duration::from_secs(120);

/// One scenario's live (sampled) and offline (exhaustive) quality
/// numbers, as reported in `BENCH_quality.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityScenario {
    /// Scenario name (stable identifier, used as the JSON key).
    pub name: String,
    /// The 1-in-k sampling rate the live broker ran with.
    pub sample_every: u64,
    /// Live samples the oracle judged (unknowns excluded).
    pub samples: u64,
    /// Live samples the oracle could not judge.
    pub unknown: u64,
    /// Live sampled precision.
    pub live_precision: f64,
    /// Live sampled recall.
    pub live_recall: f64,
    /// Live sampled F1 — the headline estimate.
    pub live_f1: f64,
    /// Lower bound of the live F1's 95% confidence interval.
    pub live_f1_ci_lo: f64,
    /// Upper bound of the live F1's 95% confidence interval.
    pub live_f1_ci_hi: f64,
    /// Offline precision over every judged pair.
    pub offline_precision: f64,
    /// Offline recall over every judged pair.
    pub offline_recall: f64,
    /// Offline F1 — the population quantity the live F1 estimates.
    pub offline_f1: f64,
    /// `|live_f1 - offline_f1|`.
    pub f1_gap: f64,
    /// Whether the gap fits inside the live CI's half-width (the
    /// agreement property the quality gate enforces).
    pub within_ci: bool,
    /// Drift alerts raised by the live sampler during the run.
    pub drift_alerts: u64,
}

impl QualityScenario {
    /// One JSON object (no trailing newline).
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"sample_every\":{},\"samples\":{},",
                "\"unknown\":{},\"live_precision\":{:.6},\"live_recall\":{:.6},",
                "\"live_f1\":{:.6},\"live_f1_ci_lo\":{:.6},\"live_f1_ci_hi\":{:.6},",
                "\"offline_precision\":{:.6},\"offline_recall\":{:.6},",
                "\"offline_f1\":{:.6},\"f1_gap\":{:.6},\"within_ci\":{},",
                "\"drift_alerts\":{}}}"
            ),
            self.name,
            self.sample_every,
            self.samples,
            self.unknown,
            self.live_precision,
            self.live_recall,
            self.live_f1,
            self.live_f1_ci_lo,
            self.live_f1_ci_hi,
            self.offline_precision,
            self.offline_recall,
            self.offline_f1,
            self.f1_gap,
            self.within_ci,
            self.drift_alerts,
        )
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} 1-in-{:<4} live F1={:.3} [{:.3},{:.3}] offline F1={:.3} gap={:.4} ({} samples{})",
            self.name,
            self.sample_every,
            self.live_f1,
            self.live_f1_ci_lo,
            self.live_f1_ci_hi,
            self.offline_f1,
            self.f1_gap,
            self.samples,
            if self.within_ci { "" } else { ", OUTSIDE CI" },
        )
    }
}

/// Renders the scenario list as the `BENCH_quality.json` document.
pub fn render_json(results: &[QualityScenario]) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Publishes `events` through a quality-sampled broker `rounds` times,
/// reads the live report, then replays the same pairs offline through
/// the same matcher and oracle.
///
/// With `force_state` set, the broker runs with overload control enabled
/// and pinned to that load state, so the live side matches at the state's
/// degraded fidelity while the offline replay stays at full fidelity —
/// `f1_gap` then *is* the measured live-F1 cost of that degradation rung
/// (and `within_ci` is expected to be false for lossy rungs). Degraded
/// scenarios are reported in `BENCH_quality.json` but deliberately kept
/// out of `ci/quality_baseline.json`, so the gate never holds them to the
/// estimator-agreement bar.
#[allow(clippy::too_many_arguments)]
fn run_quality_scenario<M>(
    name: &str,
    matcher: Arc<M>,
    config: BrokerConfig,
    oracle: &GroundTruthOracle,
    subscriptions: &[Subscription],
    events: &[Event],
    every: u64,
    rounds: usize,
    force_state: Option<LoadState>,
    observer: &ScenarioObserver,
) -> QualityScenario
where
    M: Matcher + Send + Sync + 'static,
{
    let config = if force_state.is_some() {
        config.with_overload_control(OverloadConfig::default())
    } else {
        config
    };
    let threshold = config.delivery_threshold;
    let broker = Arc::new(
        Broker::start(Arc::clone(&matcher), config)
            .with_quality_sampling(every, Box::new(oracle.clone())),
    );
    let receivers: Vec<_> = subscriptions
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    if let Some(state) = force_state {
        // Warm every pair's semantic caches at full fidelity first — the
        // shared Arc means the broker's workers see the same caches — so
        // `CacheOnly` measures the warm-cache rung, not a cold start.
        for sub in subscriptions {
            for event in events {
                let _ = matcher.match_event(sub, event);
            }
        }
        broker.force_load_state(Some(state));
    }
    observer(name, &broker);
    for _ in 0..rounds {
        for e in events {
            broker.publish(e.clone()).expect("publish");
        }
    }
    broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
    let report = broker.quality().expect("quality sampling is installed");
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();

    // Offline: the exact population the live sampler drew from — every
    // subscription × event pair the oracle can judge, decided by the
    // same matcher at the same delivery threshold.
    let offline = thresholded_effectiveness(subscriptions.iter().flat_map(|sub| {
        let matcher = &matcher;
        events.iter().filter_map(move |event| {
            let relevant = oracle.judge(sub, event)?;
            let result = matcher.match_event(sub, event);
            let predicted = !result.is_empty() && result.is_match(threshold);
            Some((predicted, relevant))
        })
    }));

    let f1_gap = (report.f1 - offline.f1).abs();
    // The half-width floor keeps exact agreement (gap 0, degenerate CI)
    // from reading as a violation.
    let within_ci = f1_gap <= report.f1_ci_half_width().max(1e-9);
    QualityScenario {
        name: name.to_string(),
        sample_every: report.sample_every,
        samples: report.judged(),
        unknown: report.unknown,
        live_precision: report.precision,
        live_recall: report.recall,
        live_f1: report.f1,
        live_f1_ci_lo: report.f1_ci.0,
        live_f1_ci_hi: report.f1_ci.1,
        offline_precision: offline.precision,
        offline_recall: offline.recall,
        offline_f1: offline.f1,
        f1_gap,
        within_ci,
        drift_alerts: report.drift.len() as u64,
    }
}

/// Runs the standard quality scenarios at the seed bench's scale:
///
/// * `quality_exact_k1` — exact matcher, every match test sampled: the
///   live confusion matrix is a whole-number multiple of the offline
///   one, so live and offline F1 must be *identical*;
/// * `quality_exact_k100` — the production-shaped configuration
///   (1-in-100 sampling over enough rounds for ~200 samples): live F1
///   must agree with offline within its confidence interval;
/// * `quality_thematic_k1` — the thematic matcher with themed traffic,
///   exercising approximate scores and the cache-temperature path;
/// * `quality_degraded_cache_only` / `quality_degraded_exact_only` — the
///   thematic matcher (memo-cached) with the broker pinned to
///   `Overloaded` / `Critical`, measuring the live-F1 cost of each
///   degraded matching rung against the full-fidelity offline replay
///   (`f1_gap`). Not part of `ci/quality_baseline.json`.
pub fn run_quality_scenarios() -> Vec<QualityScenario> {
    run_quality_scenarios_observed(&|_, _| {})
}

/// [`run_quality_scenarios`] with an observer that receives each
/// scenario's live broker before its first publish (how `probe bench
/// --serve` points `/quality` and `/top` at the running scenario).
pub fn run_quality_scenarios_observed(observer: &ScenarioObserver) -> Vec<QualityScenario> {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let oracle = GroundTruthOracle::from_workload(&workload);
    let th = Thesaurus::eurovoc_like();
    let domain_tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();

    let base_events: Vec<Event> = workload.events().iter().take(128).cloned().collect();
    let base_subs: Vec<Subscription> = workload.subscriptions().iter().take(8).cloned().collect();
    let themed_events: Vec<Event> = base_events
        .iter()
        .map(|e| e.with_theme_tags(domain_tags.clone()))
        .collect();
    let themed_subs: Vec<Subscription> = base_subs
        .iter()
        .map(|s| s.with_theme_tags(domain_tags.clone()))
        .collect();

    vec![
        run_quality_scenario(
            "quality_exact_k1",
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default().with_workers(2),
            &oracle,
            &base_subs,
            &base_events,
            1,
            2,
            None,
            observer,
        ),
        run_quality_scenario(
            "quality_exact_k100",
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default().with_workers(2),
            &oracle,
            &base_subs,
            &base_events,
            100,
            24,
            None,
            observer,
        ),
        run_quality_scenario(
            "quality_thematic_k1",
            Arc::new(stack.thematic()),
            BrokerConfig::default().with_workers(2),
            &oracle,
            &themed_subs,
            &themed_events,
            1,
            1,
            None,
            observer,
        ),
        run_quality_scenario(
            "quality_degraded_cache_only",
            Arc::new(stack.thematic_cached()),
            BrokerConfig::default().with_workers(2),
            &oracle,
            &themed_subs,
            &themed_events,
            1,
            1,
            Some(LoadState::Overloaded),
            observer,
        ),
        run_quality_scenario(
            "quality_degraded_exact_only",
            Arc::new(stack.thematic_cached()),
            BrokerConfig::default().with_workers(2),
            &oracle,
            &themed_subs,
            &themed_events,
            1,
            1,
            Some(LoadState::Critical),
            observer,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(within_ci: bool) -> QualityScenario {
        QualityScenario {
            name: "s".into(),
            sample_every: 100,
            samples: 210,
            unknown: 3,
            live_precision: 0.9,
            live_recall: 0.8,
            live_f1: 0.847,
            live_f1_ci_lo: 0.78,
            live_f1_ci_hi: 0.91,
            offline_precision: 0.88,
            offline_recall: 0.81,
            offline_f1: 0.843,
            f1_gap: 0.004,
            within_ci,
            drift_alerts: 0,
        }
    }

    #[test]
    fn json_is_well_formed_and_machine_readable() {
        let doc = render_json(&[sample(true), sample(false)]);
        let parsed: serde_json::JsonValue = serde_json::from_str(&doc).expect("valid JSON");
        let root = parsed.as_map().expect("object root");
        let scenarios = serde::value_get(root, "scenarios")
            .and_then(|v| v.as_seq())
            .expect("scenario array");
        assert_eq!(scenarios.len(), 2);
        let first = scenarios[0].as_map().expect("scenario object");
        let field = |k: &str| serde::value_get(first, k).expect(k);
        assert_eq!(field("name").as_str(), Some("s"));
        assert_eq!(field("sample_every").as_u64(), Some(100));
        assert_eq!(field("samples").as_u64(), Some(210));
        assert_eq!(field("live_f1").as_f64(), Some(0.847));
        assert_eq!(field("offline_f1").as_f64(), Some(0.843));
        assert_eq!(field("within_ci").as_bool(), Some(true));
        let second = scenarios[1].as_map().expect("scenario object");
        assert_eq!(
            serde::value_get(second, "within_ci").and_then(|v| v.as_bool()),
            Some(false)
        );
    }

    #[test]
    fn summary_flags_ci_violations() {
        assert!(!sample(true).summary().contains("OUTSIDE CI"));
        assert!(sample(false).summary().contains("OUTSIDE CI"));
        assert!(sample(true).summary().contains("1-in-100"));
    }

    #[test]
    fn exact_k1_live_equals_offline_exactly() {
        // The fundamental estimator property at 1-in-1 sampling: live
        // and offline pool the same decisions, so the F1s are equal to
        // the last bit, not merely within CI.
        let cfg = EvalConfig::tiny();
        let workload = Workload::generate(&cfg);
        let oracle = GroundTruthOracle::from_workload(&workload);
        let subs: Vec<Subscription> = workload.subscriptions().iter().take(4).cloned().collect();
        let events: Vec<Event> = workload.events().iter().take(48).cloned().collect();
        let s = run_quality_scenario(
            "test_exact_k1",
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default().with_workers(2),
            &oracle,
            &subs,
            &events,
            1,
            1,
            None,
            &|_, _| {},
        );
        assert!(s.samples > 0, "every match test is sampled");
        assert_eq!(s.live_f1, s.offline_f1, "{s:?}");
        assert_eq!(s.live_precision, s.offline_precision);
        assert_eq!(s.live_recall, s.offline_recall);
        assert_eq!(s.f1_gap, 0.0);
        assert!(s.within_ci);
    }
}
