//! Rendering of experiment reports: ASCII heatmaps and CSV files.

use tep_eval::experiments::{GridCell, GridReport};

/// Which metric of the grid a rendering reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridMetric {
    /// Mean maximal F1 (Figures 7/8).
    F1,
    /// Mean throughput in events/sec (Figures 9/10).
    Throughput,
}

impl GridMetric {
    fn mean_of(self, cell: &GridCell) -> f64 {
        match self {
            GridMetric::F1 => cell.f1_mean,
            GridMetric::Throughput => cell.throughput_mean,
        }
    }

    fn std_of(self, cell: &GridCell) -> f64 {
        match self {
            GridMetric::F1 => cell.f1_std,
            GridMetric::Throughput => cell.throughput_std,
        }
    }
}

/// Renders a grid heatmap as ASCII, in the paper's orientation: rows are
/// subscription-theme sizes (bottom = smallest), columns are event-theme
/// sizes (left = smallest). Cells above the baseline are marked `#`
/// (the paper's squares), below `.` (circles), mirroring Fig. 7/9.
pub fn render_heatmap(report: &GridReport, metric: GridMetric, baseline: f64) -> String {
    let mut out = String::new();
    let label = match metric {
        GridMetric::F1 => "F1",
        GridMetric::Throughput => "events/sec",
    };
    out.push_str(&format!(
        "rows: subscription theme size (top=largest) | cols: event theme size | {label} | baseline {baseline:.3}\n"
    ));
    out.push_str("'#' above baseline, '.' below; value shown is the sample mean\n\n");
    let mut rows: Vec<usize> = report.subscription_sizes.clone();
    rows.sort_unstable();
    rows.reverse();
    let mut cols: Vec<usize> = report.event_sizes.clone();
    cols.sort_unstable();

    out.push_str("  ss\\es |");
    for es in &cols {
        out.push_str(&format!(" {es:>7}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(9 + 8 * cols.len()));
    out.push('\n');
    for ss in &rows {
        out.push_str(&format!("  {ss:>5} |"));
        for es in &cols {
            match report.cell(*es, *ss) {
                Some(cell) => {
                    let v = metric.mean_of(cell);
                    let mark = if v > baseline { '#' } else { '.' };
                    match metric {
                        GridMetric::F1 => out.push_str(&format!(" {mark}{:>5.1}%", v * 100.0)),
                        GridMetric::Throughput => out.push_str(&format!(" {mark}{v:>6.0}")),
                    }
                }
                None => out.push_str("       -"),
            }
        }
        out.push('\n');
    }
    out
}

/// CSV of the grid means: `event_theme_size,subscription_theme_size,value`.
pub fn grid_csv(report: &GridReport, metric: GridMetric) -> String {
    let mut out = String::from("event_theme_size,subscription_theme_size,mean,std\n");
    for c in &report.cells {
        out.push_str(&format!(
            "{},{},{:.6},{:.6}\n",
            c.event_theme_size,
            c.subscription_theme_size,
            metric.mean_of(c),
            metric.std_of(c),
        ));
    }
    out
}

/// CSV of the error scatter (Figures 8/10): `mean,std` per cell.
pub fn scatter_csv(report: &GridReport, metric: GridMetric) -> String {
    let mut out = String::from("mean,std\n");
    for c in &report.cells {
        out.push_str(&format!(
            "{:.6},{:.6}\n",
            metric.mean_of(c),
            metric.std_of(c)
        ));
    }
    out
}

/// A one-paragraph summary of the grid vs a baseline, in the style of the
/// paper's §5.3.1/§5.3.2 reporting.
pub fn summarize(report: &GridReport, metric: GridMetric, baseline: f64) -> String {
    let values: Vec<f64> = report.cells.iter().map(|c| metric.mean_of(c)).collect();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0f64, f64::max);
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let above = match metric {
        GridMetric::F1 => report.fraction_above_f1(baseline),
        GridMetric::Throughput => report.fraction_above_throughput(baseline),
    };
    match metric {
        GridMetric::F1 => format!(
            "F1 range {:.1}%-{:.1}%, mean {:.1}% vs baseline {:.1}%; {:.0}% of combinations above baseline; diagonal mean {:.1}%",
            min * 100.0,
            max * 100.0,
            mean * 100.0,
            baseline * 100.0,
            above * 100.0,
            report.diagonal_f1() * 100.0,
        ),
        GridMetric::Throughput => format!(
            "throughput range {min:.0}-{max:.0} ev/s, mean {mean:.0} vs baseline {baseline:.0}; {:.0}% of combinations above baseline",
            above * 100.0,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> GridReport {
        GridReport {
            cells: vec![
                GridCell {
                    event_theme_size: 1,
                    subscription_theme_size: 1,
                    f1_mean: 0.4,
                    f1_std: 0.1,
                    throughput_mean: 100.0,
                    throughput_std: 5.0,
                    f1_samples: vec![0.3, 0.5],
                    throughput_samples: vec![95.0, 105.0],
                },
                GridCell {
                    event_theme_size: 2,
                    subscription_theme_size: 1,
                    f1_mean: 0.8,
                    f1_std: 0.05,
                    throughput_mean: 300.0,
                    throughput_std: 10.0,
                    f1_samples: vec![0.75, 0.85],
                    throughput_samples: vec![290.0, 310.0],
                },
            ],
            event_sizes: vec![1, 2],
            subscription_sizes: vec![1],
            samples_per_cell: 2,
        }
    }

    #[test]
    fn heatmap_marks_baseline_crossings() {
        let r = tiny_report();
        let text = render_heatmap(&r, GridMetric::F1, 0.62);
        assert!(
            text.contains('#'),
            "cell above baseline must be marked #\n{text}"
        );
        assert!(
            text.contains('.'),
            "cell below baseline must be marked .\n{text}"
        );
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let r = tiny_report();
        let csv = grid_csv(&r, GridMetric::Throughput);
        assert_eq!(csv.lines().count(), 1 + r.cells.len());
        assert!(csv.starts_with("event_theme_size"));
        let scatter = scatter_csv(&r, GridMetric::F1);
        assert_eq!(scatter.lines().count(), 1 + r.cells.len());
    }

    #[test]
    fn summaries_mention_ranges() {
        let r = tiny_report();
        let s = summarize(&r, GridMetric::F1, 0.62);
        assert!(s.contains("40.0%"));
        assert!(s.contains("80.0%"));
        let t = summarize(&r, GridMetric::Throughput, 202.0);
        assert!(t.contains("100"));
    }
}
