//! The `unsafe` half of allocation accounting: a [`System`] pass-through
//! `GlobalAlloc` that bumps [`tep_bench::alloc`](tep_bench::alloc)
//! counters on every heap acquisition, plus its `#[global_allocator]`
//! registration.
//!
//! Not part of the `tep_bench` library (which forbids `unsafe`); binaries
//! that want accounting include this file with `#[path]`:
//!
//! ```ignore
//! #[path = "../counting_alloc.rs"] // adjust relative to the includer
//! mod counting_alloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};

/// Counting pass-through over the system allocator. Frees are forwarded
/// uncounted; see `tep_bench::alloc` for the rationale.
pub struct CountingAllocator;

// SAFETY: pure delegation to `System`, which upholds the `GlobalAlloc`
// contract; the added counter bump is a relaxed atomic increment and
// never allocates or unwinds.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        tep_bench::alloc::record_allocation();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        tep_bench::alloc::record_allocation();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        tep_bench::alloc::record_allocation();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;
