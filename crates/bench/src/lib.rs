//! # tep-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§5.3), plus Criterion micro-benchmarks for the
//! matcher's building blocks.
//!
//! The `repro` binary drives the experiments in `tep-eval` and renders
//! their outputs:
//!
//! ```text
//! cargo run -p tep-bench --release --bin repro -- all --out results
//! cargo run -p tep-bench --release --bin repro -- fig7
//! cargo run -p tep-bench --release --bin repro -- table1 --paper-scale
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod costgate;
pub mod gate;
pub mod obsgate;
pub mod overload;
pub mod partition;
pub mod quality;
pub mod report;
pub mod subindex;
pub mod throughput;
