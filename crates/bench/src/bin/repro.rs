//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [COMMAND] [--paper-scale] [--out DIR] [--seed N]
//!
//! COMMAND:
//!   all         run everything below (default)
//!   grid        run the theme grid and cache it (feeds fig7-fig10)
//!   baseline    §5.2.5 non-thematic baseline
//!   fig7        effectiveness heatmap
//!   fig8        effectiveness sample-error scatter
//!   fig9        throughput heatmap
//!   fig10       throughput sample-error scatter
//!   table1      the four approaches, quantified
//!   prior-work  §5.1 comparison (50% approximation, precomputed scores)
//!   cold-start  §7 extension: cache warm-up after a broker restart
//!   tagging     §2.3 extension: loose agreement vs free tagging
//! ```
//!
//! Results are written under `--out` (default `results/`): JSON for every
//! report, CSV for every figure, and ASCII heatmaps on stdout.

use std::path::{Path, PathBuf};
use std::time::Instant;
use tep_bench::report::{self, GridMetric};
use tep_eval::experiments::{
    run_baseline, run_cold_start, run_grid, run_prior_work, run_table1, run_tagging_modes,
    BaselineReport, GridCell, GridReport,
};
use tep_eval::{EvalConfig, MatcherStack, Workload};

struct Args {
    command: String,
    out: PathBuf,
    config: EvalConfig,
}

fn parse_args() -> Args {
    let mut command = "all".to_string();
    let mut out = PathBuf::from("results");
    let mut config = EvalConfig::quick();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper-scale" => {
                config = EvalConfig::paper_scale();
            }
            "--quick" => {
                config = EvalConfig::quick();
            }
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage("--out needs a value")));
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                config.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"));
            }
            c if !c.starts_with('-') => command = c.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    Args {
        command,
        out,
        config,
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: repro [all|grid|baseline|fig7|fig8|fig9|fig10|table1|prior-work|cold-start|tagging] [--paper-scale|--quick] [--out DIR] [--seed N]");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output directory");

    eprintln!(
        "# scale: {} events, {} subscriptions, grid {}x{} x{} samples",
        args.config.max_expanded_events,
        args.config.num_subscriptions,
        args.config.event_theme_sizes.len(),
        args.config.subscription_theme_sizes.len(),
        args.config.samples_per_cell
    );
    let t0 = Instant::now();
    eprintln!("# building corpus, index and workload ...");
    let stack = MatcherStack::build(&args.config);
    let workload = Workload::generate(&args.config);
    eprintln!("# substrate ready in {:.1}s", t0.elapsed().as_secs_f64());

    match args.command.as_str() {
        "all" => {
            let baseline = baseline(&stack, &workload, &args.out);
            let grid = grid(&stack, &workload, &args.out);
            fig7(&grid, &baseline, &args.out);
            fig8(&grid, &args.out);
            fig9(&grid, &baseline, &args.out);
            fig10(&grid, &args.out);
            table1(&stack, &workload, &args.out);
            prior_work(&stack, &workload, &args.out);
            cold_start(&stack, &workload, &args.out);
            tagging(&stack, &workload, &args.out);
        }
        "grid" => {
            let _ = grid(&stack, &workload, &args.out);
        }
        "baseline" => {
            let _ = baseline(&stack, &workload, &args.out);
        }
        "fig7" => {
            let b = baseline(&stack, &workload, &args.out);
            let g = load_or_run_grid(&stack, &workload, &args.out);
            fig7(&g, &b, &args.out);
        }
        "fig8" => {
            let g = load_or_run_grid(&stack, &workload, &args.out);
            fig8(&g, &args.out);
        }
        "fig9" => {
            let b = baseline(&stack, &workload, &args.out);
            let g = load_or_run_grid(&stack, &workload, &args.out);
            fig9(&g, &b, &args.out);
        }
        "fig10" => {
            let g = load_or_run_grid(&stack, &workload, &args.out);
            fig10(&g, &args.out);
        }
        "table1" => table1(&stack, &workload, &args.out),
        "prior-work" => prior_work(&stack, &workload, &args.out),
        "cold-start" => cold_start(&stack, &workload, &args.out),
        "tagging" => tagging(&stack, &workload, &args.out),
        other => usage(&format!("unknown command {other}")),
    }
    eprintln!("# total {:.1}s", t0.elapsed().as_secs_f64());
}

fn write(path: &Path, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("# wrote {}", path.display());
}

fn baseline(stack: &MatcherStack, workload: &Workload, out: &Path) -> BaselineReport {
    let path = out.join("baseline.json");
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(cached) = serde_json::from_str::<BaselineReport>(&text) {
            eprintln!("# baseline: using cached {}", path.display());
            return cached;
        }
    }
    eprintln!("# running §5.2.5 baseline (non-thematic, no themes) ...");
    let t = Instant::now();
    let report = run_baseline(stack, workload, 5);
    eprintln!("# baseline done in {:.1}s", t.elapsed().as_secs_f64());
    write(&path, &serde_json::to_string_pretty(&report).unwrap());
    println!(
        "\n== §5.2.5 baseline ==\nnon-thematic matcher: F1 {:.1}% (±{:.1}), throughput {:.0} ev/s (±{:.0}) over {} runs",
        report.f1 * 100.0,
        report.f1_std * 100.0,
        report.throughput,
        report.throughput_std,
        report.runs
    );
    println!("paper:                F1 62%, throughput 202 ev/s (avg of 5 runs)");
    report
}

fn grid(stack: &MatcherStack, workload: &Workload, out: &Path) -> GridReport {
    let total = workload.config().event_theme_sizes.len()
        * workload.config().subscription_theme_sizes.len();
    eprintln!(
        "# running theme grid: {total} cells x {} samples ...",
        workload.config().samples_per_cell
    );
    let t = Instant::now();
    let mut done = 0usize;
    let mut progress = |cell: &GridCell| {
        done += 1;
        if done.is_multiple_of(10) || done == total {
            eprintln!(
                "#   cell {done}/{total} (es={}, ss={}) f1={:.2} tput={:.0} [{:.0}s elapsed]",
                cell.event_theme_size,
                cell.subscription_theme_size,
                cell.f1_mean,
                cell.throughput_mean,
                t.elapsed().as_secs_f64()
            );
        }
    };
    let report = run_grid(stack, workload, Some(&mut progress));
    eprintln!("# grid done in {:.1}s", t.elapsed().as_secs_f64());
    write(
        &out.join("grid.json"),
        &serde_json::to_string_pretty(&report).unwrap(),
    );
    report
}

fn load_or_run_grid(stack: &MatcherStack, workload: &Workload, out: &Path) -> GridReport {
    let path = out.join("grid.json");
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(cached) = serde_json::from_str::<GridReport>(&text) {
            eprintln!("# grid: using cached {}", path.display());
            return cached;
        }
    }
    grid(stack, workload, out)
}

fn fig7(grid: &GridReport, baseline: &BaselineReport, out: &Path) {
    println!("\n== Figure 7: effectiveness of thematic matcher ==");
    println!(
        "{}",
        report::render_heatmap(grid, GridMetric::F1, baseline.f1)
    );
    println!(
        "summary: {}",
        report::summarize(grid, GridMetric::F1, baseline.f1)
    );
    println!("paper:   F1 62%-85% above baseline for >70% of combinations; baseline 62%");
    write(
        &out.join("fig7_effectiveness.csv"),
        &report::grid_csv(grid, GridMetric::F1),
    );
}

fn fig8(grid: &GridReport, out: &Path) {
    let csv = report::scatter_csv(grid, GridMetric::F1);
    let stds: Vec<f64> = grid.cells.iter().map(|c| c.f1_std).collect();
    let mean_err = stds.iter().sum::<f64>() / stds.len().max(1) as f64;
    println!("\n== Figure 8: effectiveness sample error ==");
    println!(
        "mean F1 sample error {:.1}% (paper: average standard error 7% of F1Score)",
        mean_err * 100.0
    );
    write(&out.join("fig8_effectiveness_error.csv"), &csv);
}

fn fig9(grid: &GridReport, baseline: &BaselineReport, out: &Path) {
    println!("\n== Figure 9: throughput of thematic matcher ==");
    println!(
        "{}",
        report::render_heatmap(grid, GridMetric::Throughput, baseline.throughput)
    );
    println!(
        "summary: {}",
        report::summarize(grid, GridMetric::Throughput, baseline.throughput)
    );
    println!("paper:   202-838 ev/s, avg 320 vs 202 baseline; >92% of combinations above baseline");
    write(
        &out.join("fig9_throughput.csv"),
        &report::grid_csv(grid, GridMetric::Throughput),
    );
}

fn fig10(grid: &GridReport, out: &Path) {
    let csv = report::scatter_csv(grid, GridMetric::Throughput);
    let stds: Vec<f64> = grid.cells.iter().map(|c| c.throughput_std).collect();
    let mean_err = stds.iter().sum::<f64>() / stds.len().max(1) as f64;
    let outliers = grid
        .cells
        .iter()
        .filter(|c| c.throughput_std > 4.0 * mean_err.max(1e-9))
        .count();
    println!("\n== Figure 10: throughput sample error ==");
    println!(
        "mean throughput sample error {:.1} ev/s; {} high-variance outlier cells of {} (paper: ~5% outliers, most errors ≈10 ev/s)",
        mean_err,
        outliers,
        grid.cells.len()
    );
    write(&out.join("fig10_throughput_error.csv"), &csv);
}

fn table1(stack: &MatcherStack, workload: &Workload, out: &Path) {
    eprintln!("# running Table 1 comparison ...");
    let t = Instant::now();
    let report = run_table1(stack, workload);
    eprintln!("# table1 done in {:.1}s", t.elapsed().as_secs_f64());
    println!("\n== Table 1 (quantified): approaches to semantic coupling ==");
    println!("{:<28} {:>8} {:>14}", "approach", "F1", "events/sec");
    for row in &report.rows {
        println!(
            "{:<28} {:>7.1}% {:>14.0}",
            row.approach,
            row.f1 * 100.0,
            row.throughput
        );
    }
    println!(
        "(thematic themes: events {:?}, subscriptions {:?})",
        report.thematic_combination.event_tags, report.thematic_combination.subscription_tags
    );
    write(
        &out.join("table1.json"),
        &serde_json::to_string_pretty(&report).unwrap(),
    );
}

fn prior_work(stack: &MatcherStack, workload: &Workload, out: &Path) {
    eprintln!("# running §5.1 prior-work comparison ...");
    let t = Instant::now();
    let report = run_prior_work(stack, workload, 10);
    eprintln!("# prior-work done in {:.1}s", t.elapsed().as_secs_f64());
    println!("\n== §5.1 prior work: approximate vs concept-based rewriting (50% approximation) ==");
    println!(
        "approximate (ESA):        F1 {:.1}% (±{:.1}) | paper: 94-97%",
        report.approximate_f1 * 100.0,
        report.approximate_f1_std * 100.0
    );
    println!(
        "rewriting (degraded KB):  F1 {:.1}% (±{:.1}) | paper: 89-92%",
        report.rewriting_f1 * 100.0,
        report.rewriting_f1_std * 100.0
    );
    println!(
        "precomputed-ESA matcher:  {:.0} ev/s | paper: ~91,000 ev/s",
        report.precomputed_throughput
    );
    println!(
        "rewriting matcher:        {:.0} ev/s | paper: ~19,100 ev/s",
        report.rewriting_throughput
    );
    write(
        &out.join("prior_work.json"),
        &serde_json::to_string_pretty(&report).unwrap(),
    );
}

fn cold_start(stack: &MatcherStack, workload: &Workload, out: &Path) {
    eprintln!("# running cold-start experiment ...");
    // Small batches so the cold first batch is visible before the
    // projection caches amortize.
    let report = run_cold_start(stack, workload, 25, 6);
    println!("\n== cold start (extension; paper §7 future work) ==");
    for (i, t) in report.batch_throughput.iter().enumerate() {
        println!(
            "batch {i}: {t:.0} ev/s{}",
            if i == 0 { "  (cold caches)" } else { "" }
        );
    }
    println!("warm/cold speedup: {:.2}x", report.warmup_speedup);
    write(
        &out.join("cold_start.json"),
        &serde_json::to_string_pretty(&report).unwrap(),
    );
}

fn tagging(stack: &MatcherStack, workload: &Workload, out: &Path) {
    eprintln!("# running tagging-modes experiment ...");
    let report = run_tagging_modes(stack, workload, &[2, 4, 8, 16], 3);
    println!("\n== tagging modes (extension; paper §2.3 loose vs no coupling) ==");
    println!(
        "{:<12} {:>18} {:>18}",
        "theme size", "contained F1", "free F1"
    );
    for row in &report.rows {
        println!(
            "{:<12} {:>12.1}% ±{:>3.1} {:>12.1}% ±{:>3.1}",
            row.theme_size,
            row.contained_f1 * 100.0,
            row.contained_f1_std * 100.0,
            row.free_f1 * 100.0,
            row.free_f1_std * 100.0
        );
    }
    write(
        &out.join("tagging_modes.json"),
        &serde_json::to_string_pretty(&report).unwrap(),
    );
}
