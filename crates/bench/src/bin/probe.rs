//! Calibration probe: prints thematic F1/throughput for hand-picked theme
//! combinations against the non-thematic baseline. Not part of the paper
//! reproduction; used to tune the synthetic-corpus knobs.
//!
//! `probe bench [--out PATH]` instead runs the end-to-end broker
//! throughput scenarios and writes the machine-readable
//! `BENCH_throughput.json` (default path), printing one summary line per
//! scenario with events/sec and the semantic-cache hit rate. With
//! `--serve ADDR` it also exposes `/metrics`, `/healthz`, and `/explain`
//! over HTTP for the duration of the run.
//!
//! `probe perf-gate [--baseline PATH] [--current PATH]` compares a fresh
//! throughput document against the committed baseline and exits non-zero
//! on a regression (see `ci/perf_gate.sh`), and
//! `probe quality-gate [--baseline PATH] [--current PATH]` does the same
//! for the matching-quality document.

// Register the counting allocator so the throughput document carries real
// allocations-per-event figures (see `tep_bench::alloc`). The library
// forbids `unsafe`; the `GlobalAlloc` impl is included per-binary.
#[path = "../counting_alloc.rs"]
mod counting_alloc;

use std::sync::{Arc, RwLock};
use std::time::Duration;
use tep::prelude::{render_explanations_json, render_quality_json, serve, Broker, ScrapeHandlers};
use tep::thesaurus::{Domain, Thesaurus};
use tep_bench::gate::{GateConfig, QualityGateConfig, SubindexGateConfig};
use tep_bench::obsgate::ObsGateConfig;
use tep_eval::{run_sub_experiment, EvalConfig, MatcherStack, ThemeCombination, Workload};

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("terms") => {
            term_diagnostics();
            return;
        }
        Some("bench") => {
            bench_throughput();
            return;
        }
        Some("perf-gate") => {
            perf_gate();
            return;
        }
        Some("quality-gate") => {
            quality_gate();
            return;
        }
        Some("subindex-gate") => {
            subindex_gate();
            return;
        }
        Some("obs-gate") => {
            obs_gate();
            return;
        }
        Some("cost-gate") => {
            cost_gate();
            return;
        }
        Some("partition-plan") => {
            partition_plan();
            return;
        }
        _ => {}
    }
    let cfg = EvalConfig::quick();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let all_tags: Vec<String> = th
        .top_terms_of(&Domain::ALL)
        .iter()
        .map(|t| t.as_str().to_string())
        .collect();

    let no_theme = ThemeCombination {
        event_tags: vec![],
        subscription_tags: vec![],
    };
    let base = run_sub_experiment(&stack.non_thematic(), &workload, &no_theme);
    println!("baseline: f1={:.3} tput={:.0}", base.f1(), base.throughput);

    let m = stack.thematic();
    // One tag per domain = full domain coverage with 6 tags.
    let one_per_domain: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();
    let two_per_domain: Vec<String> = Domain::ALL
        .iter()
        .flat_map(|d| th.top_terms(*d)[..2].iter().map(|t| t.as_str().to_string()))
        .collect();
    let four_per_domain: Vec<String> = Domain::ALL
        .iter()
        .flat_map(|d| th.top_terms(*d)[..4].iter().map(|t| t.as_str().to_string()))
        .collect();

    let combos: Vec<(&str, Vec<String>, Vec<String>)> = vec![
        ("all48/all48", all_tags.clone(), all_tags.clone()),
        (
            "1perdom/1perdom",
            one_per_domain.clone(),
            one_per_domain.clone(),
        ),
        (
            "2perdom/2perdom",
            two_per_domain.clone(),
            two_per_domain.clone(),
        ),
        (
            "4perdom/4perdom",
            four_per_domain.clone(),
            four_per_domain.clone(),
        ),
        (
            "1perdom/2perdom",
            one_per_domain.clone(),
            two_per_domain.clone(),
        ),
        ("1perdom/all48", one_per_domain.clone(), all_tags.clone()),
        ("2perdom/all48", two_per_domain.clone(), all_tags.clone()),
        (
            "first2/first2",
            all_tags[..2].to_vec(),
            all_tags[..2].to_vec(),
        ),
        (
            "first2/first12",
            all_tags[..2].to_vec(),
            all_tags[..12].to_vec(),
        ),
        (
            "first12/first2",
            all_tags[..12].to_vec(),
            all_tags[..2].to_vec(),
        ),
    ];
    for (name, ev, sub) in combos {
        let combo = ThemeCombination {
            event_tags: ev,
            subscription_tags: sub,
        };
        let r = run_sub_experiment(&m, &workload, &combo);
        println!(
            "{name:<20} f1={:.3} ({:+.3} vs base) tput={:.0}",
            r.f1(),
            r.f1() - base.f1(),
            r.throughput
        );
        stack.clear_caches();
    }
}

/// The broker currently visible to the scrape endpoints. Scenarios swap
/// themselves in as they start; the handlers read whatever is live.
type BrokerSlot = Arc<RwLock<Option<Arc<Broker>>>>;

fn scrape_handlers(slot: &BrokerSlot) -> ScrapeHandlers {
    let metrics_slot = Arc::clone(slot);
    let health_slot = Arc::clone(slot);
    let explain_slot = Arc::clone(slot);
    let quality_slot = Arc::clone(slot);
    let top_slot = Arc::clone(slot);
    let overload_slot = Arc::clone(slot);
    let refresh_slot = Arc::clone(slot);
    let readyz_slot = Arc::clone(slot);
    let costs_slot = Arc::clone(slot);
    let bundle_slot = Arc::clone(slot);
    let trigger_slot = Arc::clone(slot);
    ScrapeHandlers::new(
        move || match metrics_slot.read().unwrap().as_ref() {
            Some(b) => b.metrics().render_prometheus(),
            None => String::from("# no scenario running\n"),
        },
        move || match health_slot.read().unwrap().as_ref() {
            Some(b) => {
                let stats = b.stats();
                format!(
                    "{{\"status\":\"ok\",\"live_workers\":{},\"quarantined\":{},\"processed\":{},\"published\":{}}}\n",
                    stats.live_workers, stats.quarantined, stats.processed, stats.published,
                )
            }
            None => String::from("{\"status\":\"idle\"}\n"),
        },
        move || match explain_slot.read().unwrap().as_ref() {
            Some(b) => render_explanations_json(&b.explain_last(100)),
            None => String::from("[]\n"),
        },
    )
    .with_quality(move || {
        match quality_slot
            .read()
            .unwrap()
            .as_ref()
            .and_then(|b| b.quality())
        {
            Some(report) => render_quality_json(&report),
            None => String::from("{\"status\":\"no quality sampling installed\"}\n"),
        }
    })
    .with_top(move || match top_slot.read().unwrap().as_ref() {
        Some(b) => b.top_json(10),
        None => String::from("{\"themes\":[],\"terms\":[]}\n"),
    })
    .with_overload(move || match overload_slot.read().unwrap().as_ref() {
        Some(b) => b.overload_json(),
        None => String::from("{\n  \"enabled\": false\n}\n"),
    })
    .with_costs(move || match costs_slot.read().unwrap().as_ref() {
        Some(b) => b.costs_json(),
        None => String::from("{\n  \"enabled\": false\n}\n"),
    })
    .with_refresh(move || {
        // Windowed rates are pushed by activity, not by a timer; a scrape
        // after an idle stretch would otherwise report the stale frame
        // from whenever traffic last ticked the window. Tick lazily here,
        // rate-limited so a scrape storm cannot shrink the window frames.
        if let Some(b) = refresh_slot.read().unwrap().as_ref() {
            b.tick_window_if_stale(Duration::from_secs(1));
        }
    })
    .with_readyz(move || match readyz_slot.read().unwrap().as_ref() {
        Some(b) => b.readiness(),
        None => (false, String::from("{\"ready\":false,\"status\":\"idle\"}\n")),
    })
    .with_bundle(move || {
        bundle_slot
            .read()
            .unwrap()
            .as_ref()
            .and_then(|b| b.latest_bundle_json())
            .map(|bundle| (*bundle).clone())
    })
    .with_trigger(move || match trigger_slot.read().unwrap().as_ref() {
        Some(b) => match b.trigger_diagnostic("manual trigger via POST /debug/trigger") {
            Some(seq) => format!("{{\"triggered\":true,\"bundle_seq\":{seq}}}\n"),
            None => String::from(
                "{\"triggered\":false,\"reason\":\"no recorder installed or trigger cooling down\"}\n",
            ),
        },
        None => String::from("{\"triggered\":false,\"reason\":\"no scenario running\"}\n"),
    })
}

/// Broker throughput scenarios → `BENCH_throughput.json` plus a
/// Prometheus-text metrics export, explain/span dumps, and the
/// live-vs-offline matching-quality document `BENCH_quality.json` (run
/// with `probe bench [--out PATH] [--prom PATH] [--serve ADDR]`).
fn bench_throughput() {
    let (out, prom_out, serve_addr, alloc_report) = {
        let mut it = std::env::args().skip(2);
        let mut path = String::from("BENCH_throughput.json");
        let mut prom = String::from("BENCH_metrics.prom");
        let mut addr: Option<String> = None;
        let mut alloc = false;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out" => path = it.next().expect("--out needs a value"),
                "--prom" => prom = it.next().expect("--prom needs a value"),
                "--serve" => addr = Some(it.next().expect("--serve needs an address")),
                "--alloc" => alloc = true,
                other => {
                    eprintln!(
                        "usage: probe bench [--out PATH] [--prom PATH] [--serve ADDR] \
                         [--alloc] (unknown arg {other:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        (path, prom, addr, alloc)
    };
    let slot: BrokerSlot = Arc::new(RwLock::new(None));
    let server = serve_addr.map(|addr| {
        let server = serve(&addr, scrape_handlers(&slot)).expect("bind scrape server");
        println!(
            "serving /metrics /healthz /readyz /explain /quality /top /overload \
             /costs /debug/bundle /debug/trigger on http://{}",
            server.local_addr()
        );
        server
    });
    let observer_slot = Arc::clone(&slot);
    let observer = move |_name: &str, broker: &Arc<Broker>| {
        *observer_slot.write().unwrap() = Some(Arc::clone(broker));
    };
    // The faulty-matcher scenario panics on purpose (isolated by the
    // broker); keep the smoke-step output to the summary lines.
    std::panic::set_hook(Box::new(|_| {}));
    let results = tep_bench::throughput::run_broker_scenarios_observed(&observer);
    let (explain_json, spans_json) = tep_bench::throughput::instrumented_dump(&observer);
    let quality_results = tep_bench::quality::run_quality_scenarios_observed(&observer);
    let _ = std::panic::take_hook();
    *slot.write().unwrap() = None;
    for r in &results {
        println!("{}", r.summary());
        for stage in &r.stages {
            // Empty classes (e.g. thematic buckets in an exact scenario)
            // would only add noise to the summary.
            if stage.count > 0 {
                println!("{}", stage.summary());
            }
        }
    }
    let json = tep_bench::throughput::render_json(&results);
    std::fs::write(&out, json).expect("write throughput JSON");
    println!("wrote {out}");
    if alloc_report {
        for r in &results {
            println!(
                "  alloc {:<26} {:>10} allocations  {:>8.2} allocs/event",
                r.name, r.allocations, r.allocs_per_event
            );
        }
        let alloc_json = tep_bench::throughput::render_alloc_json(&results);
        std::fs::write("BENCH_alloc.json", alloc_json).expect("write alloc report");
        println!("wrote BENCH_alloc.json");
    }
    // One scenario's full Prometheus export as the metrics artifact; the
    // thematic broadcast run exercises every stage class.
    if let Some(r) = results
        .iter()
        .find(|r| r.name == "seed_thematic_broadcast")
        .or(results.first())
    {
        std::fs::write(&prom_out, &r.prometheus).expect("write Prometheus metrics");
        println!("wrote {prom_out} ({} scenario)", r.name);
    }
    std::fs::write("BENCH_explain.json", explain_json).expect("write explain dump");
    std::fs::write("BENCH_spans.json", spans_json).expect("write span dump");
    println!("wrote BENCH_explain.json BENCH_spans.json (instrumented_dump scenario)");
    for q in &quality_results {
        println!("{}", q.summary());
    }
    let quality_json = tep_bench::quality::render_json(&quality_results);
    std::fs::write("BENCH_quality.json", quality_json).expect("write quality JSON");
    println!("wrote BENCH_quality.json");
    let storm = tep_bench::overload::run_overload_storm(&observer);
    *slot.write().unwrap() = None;
    println!("{}", storm.summary());
    let overload_json = tep_bench::overload::render_json(&storm);
    std::fs::write("BENCH_overload.json", overload_json).expect("write overload JSON");
    println!("wrote BENCH_overload.json");
    // The subscription-aggregation scale scenario last: it registers a
    // million subscribers (override with TEP_SUBINDEX_SUBSCRIBERS for
    // quick local runs), so let the lighter artifacts land first.
    let subindex = tep_bench::subindex::run_subindex_scenarios();
    println!("{}", subindex.small.summary());
    println!("{}", subindex.large.summary());
    println!(
        "  large/small throughput ratio {:.3}",
        subindex.ratio_vs_small()
    );
    std::fs::write("BENCH_subindex.json", subindex.render_json()).expect("write subindex JSON");
    println!("wrote BENCH_subindex.json");
    drop(server);
}

/// Perf-regression gate: compares a fresh throughput document against the
/// committed baseline (run with
/// `probe perf-gate [--baseline PATH] [--current PATH]`). Exits 1 on any
/// violation or unreadable/malformed document.
fn perf_gate() {
    let (baseline, current) = {
        let mut it = std::env::args().skip(2);
        let mut baseline = String::from("ci/perf_baseline.json");
        let mut current = String::from("BENCH_throughput.json");
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--baseline" => baseline = it.next().expect("--baseline needs a value"),
                "--current" => current = it.next().expect("--current needs a value"),
                other => {
                    eprintln!(
                        "usage: probe perf-gate [--baseline PATH] [--current PATH] \
                         (unknown arg {other:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        (baseline, current)
    };
    let mut cfg = GateConfig::default();
    if let Ok(v) = std::env::var("PERF_GATE_MAX_DROP") {
        cfg.max_drop = v.parse().expect("PERF_GATE_MAX_DROP must be a float");
    }
    if let Ok(v) = std::env::var("PERF_GATE_MAX_P99_GROWTH") {
        cfg.max_p99_growth = v.parse().expect("PERF_GATE_MAX_P99_GROWTH must be a float");
    }
    if let Ok(v) = std::env::var("PERF_GATE_MAX_QW_P50_NS") {
        cfg.max_queue_wait_p50_ns = v
            .parse()
            .expect("PERF_GATE_MAX_QW_P50_NS must be an integer (0 disables)");
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf gate: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let base_doc = read(&baseline);
    let cur_doc = read(&current);
    match tep_bench::gate::compare(&base_doc, &cur_doc, &cfg) {
        Err(e) => {
            eprintln!("perf gate: {e}");
            std::process::exit(1);
        }
        Ok(report) => {
            for v in &report.violations {
                eprintln!("perf gate: {v}");
            }
            println!("{} ({baseline} vs {current})", report.summary());
            if !report.passed() {
                std::process::exit(1);
            }
        }
    }
}

/// Subscription-index gate: compares a fresh `BENCH_subindex.json`
/// against the committed baseline (run with
/// `probe subindex-gate [--baseline PATH] [--current PATH]`). Exits 1 on
/// any violation or unreadable/malformed document.
fn subindex_gate() {
    let (baseline, current) = {
        let mut it = std::env::args().skip(2);
        let mut baseline = String::from("ci/subindex_baseline.json");
        let mut current = String::from("BENCH_subindex.json");
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--baseline" => baseline = it.next().expect("--baseline needs a value"),
                "--current" => current = it.next().expect("--current needs a value"),
                other => {
                    eprintln!(
                        "usage: probe subindex-gate [--baseline PATH] [--current PATH] \
                         (unknown arg {other:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        (baseline, current)
    };
    let mut cfg = SubindexGateConfig::default();
    if let Ok(v) = std::env::var("SUBINDEX_GATE_MAX_DROP") {
        cfg.max_drop = v.parse().expect("SUBINDEX_GATE_MAX_DROP must be a float");
    }
    if let Ok(v) = std::env::var("SUBINDEX_GATE_MIN_RATIO") {
        cfg.min_ratio = v.parse().expect("SUBINDEX_GATE_MIN_RATIO must be a float");
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("subindex gate: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let base_doc = read(&baseline);
    let cur_doc = read(&current);
    match tep_bench::gate::compare_subindex(&base_doc, &cur_doc, &cfg) {
        Err(e) => {
            eprintln!("subindex gate: {e}");
            std::process::exit(1);
        }
        Ok(report) => {
            for v in &report.violations {
                eprintln!("subindex gate: {v}");
            }
            if report.passed() {
                println!(
                    "subindex gate PASSED ({} populations) ({baseline} vs {current})",
                    report.scenarios_checked
                );
            } else {
                println!(
                    "subindex gate FAILED: {} violation(s) ({baseline} vs {current})",
                    report.violations.len()
                );
                std::process::exit(1);
            }
        }
    }
}

/// Observability gate: proves the flight recorder stays within the
/// throughput-overhead budget, allocates nothing at steady state, and
/// produces well-formed diagnostic bundles under chaos (run with
/// `probe obs-gate [--out PATH] [--bundle PATH]`). Exits 1 on any
/// violation. `OBS_GATE_MAX_OVERHEAD`, `OBS_GATE_MAX_STEADY_ALLOCS`,
/// and `OBS_GATE_TRIALS` override the thresholds for noisy runners.
fn obs_gate() {
    let (out, bundle_out) = {
        let mut it = std::env::args().skip(2);
        let mut out = String::from("BENCH_obsgate.json");
        let mut bundle = String::from("BENCH_diag_bundle.json");
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out" => out = it.next().expect("--out needs a value"),
                "--bundle" => bundle = it.next().expect("--bundle needs a value"),
                other => {
                    eprintln!(
                        "usage: probe obs-gate [--out PATH] [--bundle PATH] \
                         (unknown arg {other:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        (out, bundle)
    };
    let mut cfg = ObsGateConfig::default();
    if let Ok(v) = std::env::var("OBS_GATE_MAX_OVERHEAD") {
        cfg.max_overhead = v.parse().expect("OBS_GATE_MAX_OVERHEAD must be a float");
    }
    if let Ok(v) = std::env::var("OBS_GATE_MAX_STEADY_ALLOCS") {
        cfg.max_steady_allocs = v
            .parse()
            .expect("OBS_GATE_MAX_STEADY_ALLOCS must be an integer");
    }
    if let Ok(v) = std::env::var("OBS_GATE_TRIALS") {
        cfg.trials = v.parse().expect("OBS_GATE_TRIALS must be an integer");
    }
    // The chaos check panics a worker on purpose; keep its backtrace out
    // of the gate output.
    std::panic::set_hook(Box::new(|_| {}));
    let result = tep_bench::obsgate::run_obs_gate(&cfg);
    let _ = std::panic::take_hook();
    println!("{}", result.summary());
    std::fs::write(&out, result.render_json()).expect("write obs-gate JSON");
    println!("wrote {out}");
    // The panic bundle is the richer artifact (a real supervisor-caught
    // fault); fall back to the forced-critical drill's bundle.
    if let Some(b) = result
        .panic_bundle
        .as_ref()
        .or(result.critical_bundle.as_ref())
    {
        std::fs::write(&bundle_out, b).expect("write diagnostic bundle");
        println!("wrote {bundle_out}");
    }
    for v in &result.violations {
        eprintln!("obs gate: {v}");
    }
    if !result.passed() {
        std::process::exit(1);
    }
}

/// Cost-attribution gate: proves the sampling profiler stays within the
/// throughput-overhead budget, allocates nothing at steady state, and
/// reconciles against the stage histograms (run with
/// `probe cost-gate [--baseline PATH] [--out PATH]`). Thresholds come
/// from the committed `ci/cost_baseline.json`; `COST_GATE_MAX_OVERHEAD`,
/// `COST_GATE_MAX_EXTRA_ALLOCS`, `COST_GATE_MAX_RECONCILE_ERROR`, and
/// `COST_GATE_TRIALS` override them for noisy runners. Exits 1 on any
/// violation.
fn cost_gate() {
    let (baseline, out) = {
        let mut it = std::env::args().skip(2);
        let mut baseline = String::from("ci/cost_baseline.json");
        let mut out = String::from("BENCH_costs.json");
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--baseline" => baseline = it.next().expect("--baseline needs a value"),
                "--out" => out = it.next().expect("--out needs a value"),
                other => {
                    eprintln!(
                        "usage: probe cost-gate [--baseline PATH] [--out PATH] \
                         (unknown arg {other:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        (baseline, out)
    };
    let doc = std::fs::read_to_string(&baseline).unwrap_or_else(|e| {
        eprintln!("cost gate: cannot read {baseline}: {e}");
        std::process::exit(1);
    });
    let mut cfg = tep_bench::costgate::config_from_json(&doc).unwrap_or_else(|e| {
        eprintln!("cost gate: {baseline}: {e}");
        std::process::exit(1);
    });
    if let Ok(v) = std::env::var("COST_GATE_MAX_OVERHEAD") {
        cfg.max_overhead = v.parse().expect("COST_GATE_MAX_OVERHEAD must be a float");
    }
    if let Ok(v) = std::env::var("COST_GATE_MAX_EXTRA_ALLOCS") {
        cfg.max_extra_allocs = v
            .parse()
            .expect("COST_GATE_MAX_EXTRA_ALLOCS must be an integer");
    }
    if let Ok(v) = std::env::var("COST_GATE_MAX_RECONCILE_ERROR") {
        cfg.max_reconcile_error = v
            .parse()
            .expect("COST_GATE_MAX_RECONCILE_ERROR must be a float");
    }
    if let Ok(v) = std::env::var("COST_GATE_TRIALS") {
        cfg.trials = v.parse().expect("COST_GATE_TRIALS must be an integer");
    }
    let result = tep_bench::costgate::run_cost_gate(&cfg);
    println!("{}", result.summary());
    std::fs::write(&out, result.render_json()).expect("write cost-gate JSON");
    println!("wrote {out}");
    for v in &result.violations {
        eprintln!("cost gate: {v}");
    }
    if !result.passed() {
        std::process::exit(1);
    }
}

/// Data-driven partition planner: runs a skewed themed workload with
/// full (k = 1) cost attribution, feeds the measured per-theme cost
/// table into the LPT packer, and writes the N-way theme-partition map
/// (run with `probe partition-plan [--parts N] [--out PATH]`). Exits 1
/// when no cost was measured or the plan violates its own LPT
/// certificate.
fn partition_plan() {
    use tep::prelude::{parse_event, parse_subscription, BrokerConfig, ExactMatcher};
    let (parts, out) = {
        let mut it = std::env::args().skip(2);
        let mut parts = 4usize;
        let mut out = String::from("BENCH_partition_plan.json");
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--parts" => {
                    parts = it
                        .next()
                        .expect("--parts needs a value")
                        .parse()
                        .expect("--parts must be an integer");
                }
                "--out" => out = it.next().expect("--out needs a value"),
                other => {
                    eprintln!(
                        "usage: probe partition-plan [--parts N] [--out PATH] \
                         (unknown arg {other:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        (parts, out)
    };
    // A deliberately skewed synthetic workload: theme i carries i+1
    // subscribers and (i+1)² publishes, so measured cost — not theme
    // count — is what the planner has to balance.
    const THEMES: [&str; 8] = [
        "energy policy",
        "power generation",
        "building energy",
        "road transport",
        "air traffic",
        "water supply",
        "waste management",
        "public safety",
    ];
    let config = BrokerConfig::default()
        .with_workers(2)
        .with_cost_attribution(1);
    let broker = Broker::start(Arc::new(ExactMatcher::new()), config);
    let mut receivers = Vec::new();
    for (i, theme) in THEMES.iter().enumerate() {
        for _ in 0..=i {
            let sub = parse_subscription(&format!("({{{theme}}}, {{kind= t{i}}})"))
                .expect("synthetic subscription");
            receivers.push(broker.subscribe(sub).expect("subscribe").1);
        }
    }
    for (i, theme) in THEMES.iter().enumerate() {
        let event =
            parse_event(&format!("({{{theme}}}, {{kind: t{i}}})")).expect("synthetic event");
        let event = Arc::new(event);
        for _ in 0..(i + 1) * (i + 1) {
            broker.publish_arc(Arc::clone(&event)).expect("publish");
        }
    }
    broker
        .flush_timeout(Duration::from_secs(120))
        .expect("flush");
    let themes: Vec<(String, u64)> = broker
        .costs()
        .themes
        .iter()
        .map(|t| (t.label.clone(), t.total_ns()))
        .collect();
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();
    if themes.is_empty() {
        eprintln!("partition plan: the workload measured no per-theme cost");
        std::process::exit(1);
    }
    let plan = tep_bench::partition::plan_partitions(&themes, parts);
    println!("{}", plan.summary());
    for bin in &plan.bins {
        let names: Vec<&str> = bin.themes.iter().map(|(n, _)| n.as_str()).collect();
        println!(
            "  part {}: {:>12} ns  [{}]",
            bin.part,
            bin.total_ns,
            names.join(", ")
        );
    }
    std::fs::write(&out, plan.render_json()).expect("write partition plan");
    println!("wrote {out}");
    if !plan.within_bound {
        eprintln!("partition plan: heaviest shard violates the LPT certificate");
        std::process::exit(1);
    }
}

/// Quality-regression gate: compares a fresh quality document against
/// the committed baseline (run with
/// `probe quality-gate [--baseline PATH] [--current PATH]`). Exits 1 on
/// any violation or unreadable/malformed document.
fn quality_gate() {
    let (baseline, current) = {
        let mut it = std::env::args().skip(2);
        let mut baseline = String::from("ci/quality_baseline.json");
        let mut current = String::from("BENCH_quality.json");
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--baseline" => baseline = it.next().expect("--baseline needs a value"),
                "--current" => current = it.next().expect("--current needs a value"),
                other => {
                    eprintln!(
                        "usage: probe quality-gate [--baseline PATH] [--current PATH] \
                         (unknown arg {other:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        (baseline, current)
    };
    let mut cfg = QualityGateConfig::default();
    if let Ok(v) = std::env::var("QUALITY_GATE_MAX_F1_DROP") {
        cfg.max_f1_drop = v.parse().expect("QUALITY_GATE_MAX_F1_DROP must be a float");
    }
    if let Ok(v) = std::env::var("QUALITY_GATE_MIN_SAMPLES") {
        cfg.min_samples = v
            .parse()
            .expect("QUALITY_GATE_MIN_SAMPLES must be an integer");
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("quality gate: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let base_doc = read(&baseline);
    let cur_doc = read(&current);
    match tep_bench::gate::compare_quality(&base_doc, &cur_doc, &cfg) {
        Err(e) => {
            eprintln!("quality gate: {e}");
            std::process::exit(1);
        }
        Ok(report) => {
            for v in &report.violations {
                eprintln!("quality gate: {v}");
            }
            println!("{} ({baseline} vs {current})", report.summary());
            if !report.passed() {
                std::process::exit(1);
            }
        }
    }
}

/// Term-level diagnostics: full-space vs projected relatedness for
/// informative pairs (run with `probe terms`).
#[allow(dead_code)]
fn term_diagnostics() {
    use tep::prelude::*;
    let cfg = tep_eval::EvalConfig::quick();
    let stack = tep_eval::MatcherStack::build(&cfg);
    let pvsm = stack.pvsm();
    let th_all: Vec<String> = Thesaurus::eurovoc_like()
        .top_terms_of(&Domain::ALL)
        .iter()
        .map(|t| t.as_str().to_string())
        .collect();
    let empty = Theme::empty();
    let energy = Theme::new([
        "energy policy",
        "electrical industry",
        "energy metering",
        "building energy",
    ]);
    let allth = Theme::new(th_all.iter().map(|s| s.as_str()));
    let pairs = [
        ("energy consumption", "electricity usage", "synonym"),
        (
            "increased energy consumption event",
            "increased electricity usage event",
            "syn-phrase",
        ),
        ("laptop", "computer", "related"),
        ("refrigerator", "fridge", "synonym"),
        ("refrigerator", "laptop", "same-domain-diff"),
        ("refrigerator", "roundabout", "cross-domain"),
        ("energy consumption", "zebra crossing", "cross-domain"),
        ("room 112", "room 113", "near-idents"),
        ("room 112", "chamber 112", "syn+num"),
        ("charge", "battery", "ambig-energy"),
        ("charge", "toll", "ambig-transport"),
        ("galway", "dublin", "related-geo"),
        ("galway", "eire", "unrelated-ish"),
    ];
    println!(
        "{:<42} {:<18} {:>8} {:>8} {:>8}",
        "pair", "kind", "full", "energy", "all48"
    );
    for (a, b, kind) in pairs {
        let f = pvsm.relatedness(a, &empty, b, &empty);
        let e = pvsm.relatedness(a, &energy, b, &energy);
        let l = pvsm.relatedness(a, &allth, b, &allth);
        println!(
            "{:<42} {:<18} {:>8.4} {:>8.4} {:>8.4}",
            format!("{a} | {b}"),
            kind,
            f,
            e,
            l
        );
    }
    // Vector shapes.
    for t in ["energy consumption", "laptop", "room 112"] {
        let full = pvsm.project(t, &empty);
        let proj = pvsm.project(t, &energy);
        println!("nnz({t}): full={} energy-proj={}", full.nnz(), proj.nnz());
    }
}
