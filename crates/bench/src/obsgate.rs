//! Observability gate (`probe obs-gate`): proves the flight recorder is
//! effectively free and actually fires.
//!
//! Three checks, one verdict:
//!
//! * **throughput** — the `seed_exact_broadcast` scenario runs
//!   interleaved with the recorder off and on at the production-default
//!   settings, with trials long enough that several real frame ticks
//!   land inside every timed window; best-of-N on each side must agree
//!   within [`ObsGateConfig::max_overhead`] (default 1%);
//! * **steady-state allocation** — after warm-up, a tight loop of forced
//!   frame ticks on a live broker must allocate nothing: every frame
//!   buffer, theme slot, and histogram scratch is reused;
//! * **chaos** — an injected worker panic (isolation off) and a forced
//!   `Critical` load state must each freeze a well-formed diagnostic
//!   bundle whose cause names the trigger and which carries at least one
//!   pre-trigger frame.
//!
//! The result renders as `BENCH_obsgate.json`; the panic bundle itself is
//! the `BENCH_diag_bundle.json` CI artifact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::value_get;
use serde_json::JsonValue;
use tep::prelude::{
    parse_event, Broker, BrokerConfig, Event, ExactMatcher, LoadState, MatchResult, Matcher,
    OverloadConfig, RecorderSettings, Subscription,
};
use tep_eval::{EvalConfig, Workload};

const FLUSH_DEADLINE: Duration = Duration::from_secs(120);
const PUBLISH_BURST: usize = 128;
/// Forced frame ticks in the steady-state allocation loop.
const STEADY_TICKS: u64 = 256;

/// Thresholds for [`run_obs_gate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObsGateConfig {
    /// Maximum tolerated fractional throughput overhead of the recorder
    /// (0.01 = recorder-on must stay within 1% of recorder-off).
    pub max_overhead: f64,
    /// Maximum tolerated allocations across the whole steady-state
    /// forced-tick loop (not per tick).
    pub max_steady_allocs: u64,
    /// Interleaved measurement trials per side; each side keeps its best.
    pub trials: usize,
    /// Publish rounds per trial (events = rounds × 128).
    pub rounds: usize,
}

impl Default for ObsGateConfig {
    fn default() -> ObsGateConfig {
        ObsGateConfig {
            max_overhead: 0.01,
            max_steady_allocs: 0,
            trials: 3,
            rounds: 2048,
        }
    }
}

/// The outcome of one obs-gate run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsGateResult {
    /// Best recorder-off throughput (events/sec).
    pub baseline_events_per_sec: f64,
    /// Best recorder-on throughput (events/sec).
    pub recorder_events_per_sec: f64,
    /// `1 - on/off`; negative when the recorder side happened to win.
    pub overhead: f64,
    /// Forced frame ticks in the allocation loop.
    pub steady_ticks: u64,
    /// Allocations observed across the whole allocation loop.
    pub steady_allocs: u64,
    /// Frames carried by the bundle frozen after the allocation loop.
    pub frames_in_bundle: u64,
    /// The worker-panic chaos bundle, when one was produced.
    pub panic_bundle: Option<String>,
    /// The forced-`Critical` chaos bundle, when one was produced.
    pub critical_bundle: Option<String>,
    /// Everything that failed; empty means the gate passed.
    pub violations: Vec<String>,
}

impl ObsGateResult {
    /// Whether every check cleared its threshold.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One human-readable line per side of the verdict.
    pub fn summary(&self) -> String {
        format!(
            "obs gate {}: recorder-off {:.0} ev/s, recorder-on {:.0} ev/s \
             (overhead {:+.2}%), {} allocs / {} forced ticks, \
             panic bundle {}, critical bundle {}",
            if self.passed() { "PASSED" } else { "FAILED" },
            self.baseline_events_per_sec,
            self.recorder_events_per_sec,
            self.overhead * 100.0,
            self.steady_allocs,
            self.steady_ticks,
            if self.panic_bundle.is_some() {
                "ok"
            } else {
                "MISSING"
            },
            if self.critical_bundle.is_some() {
                "ok"
            } else {
                "MISSING"
            },
        )
    }

    /// The machine-readable `BENCH_obsgate.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"baseline_events_per_sec\": {:.1},\n",
            self.baseline_events_per_sec
        ));
        out.push_str(&format!(
            "  \"recorder_events_per_sec\": {:.1},\n",
            self.recorder_events_per_sec
        ));
        out.push_str(&format!("  \"overhead\": {:.6},\n", self.overhead));
        out.push_str(&format!("  \"steady_ticks\": {},\n", self.steady_ticks));
        out.push_str(&format!("  \"steady_allocs\": {},\n", self.steady_allocs));
        out.push_str(&format!(
            "  \"frames_in_bundle\": {},\n",
            self.frames_in_bundle
        ));
        out.push_str(&format!(
            "  \"panic_bundle_produced\": {},\n",
            self.panic_bundle.is_some()
        ));
        out.push_str(&format!(
            "  \"critical_bundle_produced\": {},\n",
            self.critical_bundle.is_some()
        ));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&tep_obs_escape(v));
            out.push('"');
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"passed\": {}\n}}\n", self.passed()));
        out
    }
}

fn tep_obs_escape(s: &str) -> String {
    // The violation strings are ASCII diagnostics; quote/backslash cover
    // everything format!() can put in them.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A matcher that panics on events carrying `k: boom` and otherwise
/// behaves exactly — the chaos fault injector for the panic-bundle check.
struct PanicOnBoom(ExactMatcher);

impl Matcher for PanicOnBoom {
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
        if event.value_of("k") == Some("boom") {
            panic!("injected obs-gate fault");
        }
        self.0.match_event(subscription, event)
    }
}

fn bench_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(2)
}

/// A recorder tuned so frames genuinely record inside a tens-of-ms timed
/// window: the 250 ms production default would never fire.
fn fast_recorder() -> RecorderSettings {
    RecorderSettings {
        tick_ms: 2,
        ..RecorderSettings::default()
    }
}

/// One `seed_exact_broadcast`-shaped measurement; returns events/sec.
fn measure_throughput(
    subs: &[Subscription],
    events: &[Arc<Event>],
    rounds: usize,
    recorder: Option<RecorderSettings>,
) -> f64 {
    let mut config = BrokerConfig::default().with_workers(bench_workers());
    if let Some(settings) = recorder {
        config = config.with_flight_recorder(settings);
    }
    let broker = Broker::start(Arc::new(ExactMatcher::new()), config);
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    // Untimed warm-up round, same rationale as the throughput scenarios.
    for e in events {
        broker.publish_arc(Arc::clone(e)).expect("publish");
    }
    broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
    let start = Instant::now();
    for _ in 0..rounds {
        for burst in events.chunks(PUBLISH_BURST) {
            for e in burst {
                broker.publish_arc(Arc::clone(e)).expect("publish");
            }
            broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();
    (events.len() * rounds) as f64 / elapsed
}

/// Forced-tick allocation loop; returns `(allocations, frames_in_bundle)`.
fn measure_steady_allocs(subs: &[Subscription], events: &[Arc<Event>]) -> (u64, u64) {
    let config = BrokerConfig::default()
        .with_workers(bench_workers())
        .with_flight_recorder(RecorderSettings::default());
    let broker = Broker::start(Arc::new(ExactMatcher::new()), config);
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    // Real traffic first so every stage histogram has buckets to merge,
    // then a few forced ticks so the frame buffers and the shared
    // histogram scratch have grown to their steady-state footprint.
    for e in events {
        broker.publish_arc(Arc::clone(e)).expect("publish");
    }
    broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
    for _ in 0..4 {
        broker.record_diagnostic_frame();
    }
    let before = crate::alloc::allocation_count();
    for _ in 0..STEADY_TICKS {
        broker.record_diagnostic_frame();
    }
    let allocs = crate::alloc::allocation_count().saturating_sub(before);
    let frames = broker
        .trigger_diagnostic("obs-gate steady-state check")
        .and_then(|_| broker.latest_bundle_json())
        .and_then(|bundle| frames_in_bundle(&bundle))
        .unwrap_or(0);
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();
    (allocs, frames)
}

/// Publishes a poisoned event through a non-isolating broker and returns
/// the worker-panic bundle the supervisor froze.
fn chaos_panic_bundle() -> Option<String> {
    let config = BrokerConfig::default()
        .with_workers(1)
        .with_panic_isolation(false)
        .with_max_match_attempts(2)
        .with_flight_recorder(fast_recorder());
    let broker = Broker::start(Arc::new(PanicOnBoom(ExactMatcher::new())), config);
    let (_, rx) = broker
        .subscribe(tep::prelude::parse_subscription("{k= ok}").ok()?)
        .ok()?;
    for i in 0..8 {
        let k = if i == 4 { "boom" } else { "ok" };
        broker
            .publish(parse_event(&format!("{{k: {k}, seq: n{i}}}")).ok()?)
            .ok()?;
    }
    broker.flush_timeout(FLUSH_DEADLINE).ok()?;
    // The trigger fires on the supervisor thread while it respawns the
    // dead worker; flush only proves the events drained, so give the
    // bundle itself a bounded moment to appear.
    let deadline = Instant::now() + Duration::from_secs(5);
    let bundle = loop {
        if let Some(bundle) = broker.latest_bundle_json() {
            break Some((*bundle).clone());
        }
        if Instant::now() >= deadline {
            break None;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    while rx.try_recv().is_ok() {}
    broker.close();
    bundle
}

/// Forces the load state to `Critical` on an overload-controlled broker
/// and returns the drill's bundle.
fn chaos_critical_bundle() -> Option<String> {
    let config = BrokerConfig::default()
        .with_workers(1)
        .with_overload_control(OverloadConfig::default())
        .with_flight_recorder(fast_recorder());
    let broker = Broker::start(Arc::new(ExactMatcher::new()), config);
    broker.force_load_state(Some(LoadState::Critical));
    let bundle = broker.latest_bundle_json().map(|b| (*b).clone());
    broker.force_load_state(None);
    broker.close();
    bundle
}

fn frames_in_bundle(bundle: &str) -> Option<u64> {
    let parsed: JsonValue = serde_json::from_str(bundle).ok()?;
    let entries = parsed.as_map()?;
    Some(value_get(entries, "frames")?.as_seq()?.len() as u64)
}

/// Validates one chaos bundle: top-level shape, the expected trigger
/// kind, and at least one pre-trigger frame. Violations go to `out`.
fn check_bundle(label: &str, kind: &str, bundle: &Option<String>, out: &mut Vec<String>) {
    let Some(bundle) = bundle else {
        out.push(format!("{label}: no diagnostic bundle was produced"));
        return;
    };
    let parsed: JsonValue = match serde_json::from_str(bundle) {
        Ok(v) => v,
        Err(e) => {
            out.push(format!("{label}: bundle is not valid JSON: {e:?}"));
            return;
        }
    };
    let Some(entries) = parsed.as_map() else {
        out.push(format!("{label}: bundle is not a JSON object"));
        return;
    };
    if value_get(entries, "bundle_seq")
        .and_then(JsonValue::as_u64)
        .is_none()
    {
        out.push(format!("{label}: bundle has no numeric bundle_seq"));
    }
    match value_get(entries, "cause").and_then(JsonValue::as_map) {
        None => out.push(format!("{label}: bundle has no cause object")),
        Some(cause) => {
            let got = value_get(cause, "kind").and_then(JsonValue::as_str);
            if got != Some(kind) {
                out.push(format!("{label}: cause kind is {got:?}, expected {kind:?}"));
            }
        }
    }
    match value_get(entries, "frames").and_then(JsonValue::as_seq) {
        None => out.push(format!("{label}: bundle has no frames array")),
        Some([]) => out.push(format!("{label}: bundle carries zero pre-trigger frames")),
        Some(_) => {}
    }
    if value_get(entries, "context")
        .and_then(JsonValue::as_map)
        .is_none()
    {
        out.push(format!("{label}: bundle has no context object"));
    }
}

/// Runs the full observability gate; see the module docs for the checks.
pub fn run_obs_gate(cfg: &ObsGateConfig) -> ObsGateResult {
    let eval = EvalConfig::tiny();
    let workload = Workload::generate(&eval);
    let events: Vec<Arc<Event>> = workload
        .events()
        .iter()
        .take(128)
        .cloned()
        .map(Arc::new)
        .collect();
    let subs: Vec<Subscription> = workload.subscriptions().iter().take(8).cloned().collect();

    // Interleave the sides so drift (thermal, competing load) hits both
    // equally; best-of-N on each side is the stable point estimate. The
    // gate bounds the recorder's true cost from above, so a comparison
    // that still lands over the ceiling is re-measured (up to two more
    // passes) and the lowest observed overhead kept: any clean window
    // suffices, and one noisy window cannot fail the run.
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut overhead = f64::INFINITY;
    for _attempt in 0..3 {
        let mut off = 0.0f64;
        let mut on = 0.0f64;
        for _ in 0..cfg.trials.max(1) {
            off = off.max(measure_throughput(&subs, &events, cfg.rounds, None));
            on = on.max(measure_throughput(
                &subs,
                &events,
                cfg.rounds,
                // The production-default recorder: the gate's claim is
                // about the configuration operators actually run. At
                // ~0.7 s per trial the 250 ms tick still fires several
                // times inside every timed window.
                Some(RecorderSettings::default()),
            ));
        }
        let pass_overhead = 1.0 - on / off.max(1e-9);
        if pass_overhead < overhead {
            overhead = pass_overhead;
            best_off = off;
            best_on = on;
        }
        if overhead <= cfg.max_overhead {
            break;
        }
    }

    let (steady_allocs, frames_in_bundle) = measure_steady_allocs(&subs, &events);
    let panic_bundle = chaos_panic_bundle();
    let critical_bundle = chaos_critical_bundle();

    let mut violations = Vec::new();
    if overhead > cfg.max_overhead {
        violations.push(format!(
            "recorder overhead {:.2}% exceeds the {:.2}% ceiling \
             ({best_on:.0} ev/s on vs {best_off:.0} ev/s off)",
            overhead * 100.0,
            cfg.max_overhead * 100.0,
        ));
    }
    if steady_allocs > cfg.max_steady_allocs {
        violations.push(format!(
            "steady-state recorder ticks allocated {steady_allocs} times \
             over {STEADY_TICKS} forced frames (max {})",
            cfg.max_steady_allocs,
        ));
    }
    if frames_in_bundle == 0 {
        violations.push(String::from(
            "steady-state bundle carried zero frames; the tick path never recorded",
        ));
    }
    check_bundle(
        "worker panic",
        "worker_panic",
        &panic_bundle,
        &mut violations,
    );
    check_bundle(
        "forced critical",
        "load_critical",
        &critical_bundle,
        &mut violations,
    );

    ObsGateResult {
        baseline_events_per_sec: best_off,
        recorder_events_per_sec: best_on,
        overhead,
        steady_ticks: STEADY_TICKS,
        steady_allocs,
        frames_in_bundle,
        panic_bundle,
        critical_bundle,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_json_is_parseable_and_escapes_violations() {
        let result = ObsGateResult {
            baseline_events_per_sec: 100_000.0,
            recorder_events_per_sec: 99_500.0,
            overhead: 0.005,
            steady_ticks: STEADY_TICKS,
            steady_allocs: 0,
            frames_in_bundle: 8,
            panic_bundle: Some(String::from("{}")),
            critical_bundle: None,
            violations: vec![String::from("cause kind is \"manual\"")],
        };
        let parsed: JsonValue = serde_json::from_str(&result.render_json()).expect("valid JSON");
        let entries = parsed.as_map().expect("object");
        assert_eq!(
            value_get(entries, "passed").and_then(JsonValue::as_bool),
            Some(false)
        );
        assert_eq!(
            value_get(entries, "critical_bundle_produced").and_then(JsonValue::as_bool),
            Some(false)
        );
        let violations = value_get(entries, "violations")
            .and_then(JsonValue::as_seq)
            .expect("violations array");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].as_str().unwrap().contains("manual"));
    }

    #[test]
    fn check_bundle_accepts_a_well_formed_bundle() {
        let bundle = String::from(
            "{\"bundle_seq\": 1, \"cause\": {\"kind\": \"worker_panic\", \
             \"detail\": \"d\", \"at_ms\": 1.0}, \"frames\": [{\"seq\": 0}], \
             \"context\": {}}",
        );
        let mut violations = Vec::new();
        check_bundle("test", "worker_panic", &Some(bundle), &mut violations);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn check_bundle_flags_missing_pieces() {
        let mut violations = Vec::new();
        check_bundle("test", "worker_panic", &None, &mut violations);
        check_bundle(
            "test",
            "worker_panic",
            &Some(String::from(
                "{\"cause\": {\"kind\": \"manual\"}, \"frames\": []}",
            )),
            &mut violations,
        );
        assert!(violations
            .iter()
            .any(|v| v.contains("no diagnostic bundle")));
        assert!(violations
            .iter()
            .any(|v| v.contains("expected \"worker_panic\"")));
        assert!(violations
            .iter()
            .any(|v| v.contains("zero pre-trigger frames")));
        assert!(violations.iter().any(|v| v.contains("bundle_seq")));
    }
}
