//! Cost-attribution gate (`probe cost-gate`): proves the sampling cost
//! profiler is effectively free and statistically honest.
//!
//! Three checks, one verdict:
//!
//! * **throughput** — the `seed_exact_broadcast` scenario runs
//!   interleaved with cost attribution off and on at the default 1-in-k
//!   rate; best-of-N on each side must agree within
//!   [`CostGateConfig::max_overhead`] (default 1%);
//! * **steady-state allocation** — after warm-up, a publish loop with
//!   k = 1 (every dispatch charged, the worst case) may allocate no more
//!   than the identical loop with attribution off: labels are
//!   preformatted at subscribe time and every charge is a fetch-add;
//! * **reconciliation** — attributed sampled totals scaled by k must
//!   land within [`CostGateConfig::max_reconcile_error`] of the global
//!   match and deliver stage-histogram sums, and at k = 1 they must
//!   match those sums *exactly* (the charge reuses the very nanosecond
//!   figure the histogram recorded).
//!
//! Thresholds come from the committed `ci/cost_baseline.json` (see
//! [`config_from_json`]) with `COST_GATE_*` environment overrides for
//! noisy runners. The result renders as `BENCH_costs.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::value_get;
use serde_json::JsonValue;
use tep::prelude::{
    Broker, BrokerConfig, Event, ExactMatcher, Subscription, DEFAULT_COST_SAMPLE_EVERY,
};
use tep_eval::{EvalConfig, Workload};

const FLUSH_DEADLINE: Duration = Duration::from_secs(120);
const PUBLISH_BURST: usize = 128;
/// Publish rounds in the steady-state allocation loop.
const STEADY_ROUNDS: usize = 32;
/// Publish rounds in the reconciliation runs.
const RECONCILE_ROUNDS: usize = 256;

/// Thresholds for [`run_cost_gate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostGateConfig {
    /// Maximum tolerated fractional throughput overhead of cost
    /// attribution at the default sampling rate (0.01 = 1%).
    pub max_overhead: f64,
    /// Maximum allocations the k = 1 steady loop may add over the
    /// attribution-off loop (0 = the charge path allocates nothing).
    pub max_extra_allocs: u64,
    /// Maximum tolerated relative error between `sampled × k` and the
    /// stage-histogram totals at the default k. Sampling error shrinks
    /// as 1/√samples; the default 0.35 absorbs heavy-tailed per-dispatch
    /// costs on a short CI run.
    pub max_reconcile_error: f64,
    /// Interleaved measurement trials per side; each side keeps its best.
    pub trials: usize,
    /// Publish rounds per throughput trial (events = rounds × 128).
    pub rounds: usize,
    /// The 1-in-k rate the throughput and reconciliation checks run at.
    pub sample_every: u64,
}

impl Default for CostGateConfig {
    fn default() -> CostGateConfig {
        CostGateConfig {
            max_overhead: 0.01,
            max_extra_allocs: 0,
            max_reconcile_error: 0.35,
            trials: 3,
            rounds: 2048,
            sample_every: DEFAULT_COST_SAMPLE_EVERY,
        }
    }
}

/// Parses the committed threshold document (`ci/cost_baseline.json`).
/// Unknown keys are ignored; missing keys keep their defaults, so the
/// baseline only has to pin what it cares about.
///
/// # Errors
///
/// A human-readable message when the document is not a JSON object or a
/// present key has the wrong type.
pub fn config_from_json(doc: &str) -> Result<CostGateConfig, String> {
    let parsed: JsonValue =
        serde_json::from_str(doc).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let entries = parsed
        .as_map()
        .ok_or_else(|| String::from("baseline is not a JSON object"))?;
    let mut cfg = CostGateConfig::default();
    let float = |key: &str, into: &mut f64| -> Result<(), String> {
        if let Some(v) = value_get(entries, key) {
            *into = v
                .as_f64()
                .ok_or_else(|| format!("baseline key {key:?} must be a number"))?;
        }
        Ok(())
    };
    float("max_overhead", &mut cfg.max_overhead)?;
    float("max_reconcile_error", &mut cfg.max_reconcile_error)?;
    let int = |key: &str| -> Result<Option<u64>, String> {
        match value_get(entries, key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("baseline key {key:?} must be an integer")),
        }
    };
    if let Some(v) = int("max_extra_allocs")? {
        cfg.max_extra_allocs = v;
    }
    if let Some(v) = int("trials")? {
        cfg.trials = v as usize;
    }
    if let Some(v) = int("rounds")? {
        cfg.rounds = v as usize;
    }
    if let Some(v) = int("sample_every")? {
        cfg.sample_every = v.max(1);
    }
    Ok(cfg)
}

/// The outcome of one cost-gate run.
#[derive(Debug, Clone, PartialEq)]
pub struct CostGateResult {
    /// Best attribution-off throughput (events/sec).
    pub baseline_events_per_sec: f64,
    /// Best attribution-on throughput at the default k (events/sec).
    pub cost_events_per_sec: f64,
    /// `1 - on/off`; negative when the attribution side happened to win.
    pub overhead: f64,
    /// Allocations across the attribution-off steady publish loop.
    pub steady_allocs_off: u64,
    /// Allocations across the identical k = 1 steady publish loop.
    pub steady_allocs_on: u64,
    /// The k the throughput and reconciliation checks ran at.
    pub sample_every: u64,
    /// Dispatches the reconciliation run charged.
    pub samples: u64,
    /// `|sampled×k − histogram| / histogram` for match nanoseconds.
    pub reconcile_error_match: f64,
    /// Same for deliver nanoseconds.
    pub reconcile_error_deliver: f64,
    /// Whether the k = 1 run reconciled *exactly* against the stage sums.
    pub k1_exact: bool,
    /// Everything that failed; empty means the gate passed.
    pub violations: Vec<String>,
}

impl CostGateResult {
    /// Allocations the charge path added over the baseline loop.
    pub fn extra_allocs(&self) -> u64 {
        self.steady_allocs_on.saturating_sub(self.steady_allocs_off)
    }

    /// Whether every check cleared its threshold.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One human-readable line per side of the verdict.
    pub fn summary(&self) -> String {
        format!(
            "cost gate {}: attribution-off {:.0} ev/s, attribution-on(k={}) {:.0} ev/s \
             (overhead {:+.2}%), {} extra allocs, reconcile err match {:.1}% deliver {:.1}% \
             over {} samples, k=1 exact {}",
            if self.passed() { "PASSED" } else { "FAILED" },
            self.baseline_events_per_sec,
            self.sample_every,
            self.cost_events_per_sec,
            self.overhead * 100.0,
            self.extra_allocs(),
            self.reconcile_error_match * 100.0,
            self.reconcile_error_deliver * 100.0,
            self.samples,
            if self.k1_exact { "yes" } else { "NO" },
        )
    }

    /// The machine-readable `BENCH_costs.json` document.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"baseline_events_per_sec\": {:.1},",
            self.baseline_events_per_sec
        );
        let _ = writeln!(
            out,
            "  \"cost_events_per_sec\": {:.1},",
            self.cost_events_per_sec
        );
        let _ = writeln!(out, "  \"overhead\": {:.6},", self.overhead);
        let _ = writeln!(out, "  \"sample_every\": {},", self.sample_every);
        let _ = writeln!(out, "  \"steady_allocs_off\": {},", self.steady_allocs_off);
        let _ = writeln!(out, "  \"steady_allocs_on\": {},", self.steady_allocs_on);
        let _ = writeln!(out, "  \"extra_allocs\": {},", self.extra_allocs());
        let _ = writeln!(out, "  \"samples\": {},", self.samples);
        let _ = writeln!(
            out,
            "  \"reconcile_error_match\": {:.6},",
            self.reconcile_error_match
        );
        let _ = writeln!(
            out,
            "  \"reconcile_error_deliver\": {:.6},",
            self.reconcile_error_deliver
        );
        let _ = writeln!(out, "  \"k1_exact\": {},", self.k1_exact);
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
            out.push('"');
        }
        out.push_str("],\n");
        let _ = write!(out, "  \"passed\": {}\n}}\n", self.passed());
        out
    }
}

fn bench_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(2)
}

fn start_broker(every: u64) -> Broker {
    let mut config = BrokerConfig::default().with_workers(bench_workers());
    if every > 0 {
        config = config.with_cost_attribution(every);
    }
    Broker::start(Arc::new(ExactMatcher::new()), config)
}

/// One `seed_exact_broadcast`-shaped measurement; returns events/sec.
/// `every` = 0 runs with attribution off.
fn measure_throughput(
    subs: &[Subscription],
    events: &[Arc<Event>],
    rounds: usize,
    every: u64,
) -> f64 {
    let broker = start_broker(every);
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    // Untimed warm-up round, same rationale as the throughput scenarios.
    for e in events {
        broker.publish_arc(Arc::clone(e)).expect("publish");
    }
    broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
    let start = Instant::now();
    for _ in 0..rounds {
        for burst in events.chunks(PUBLISH_BURST) {
            for e in burst {
                broker.publish_arc(Arc::clone(e)).expect("publish");
            }
            broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();
    (events.len() * rounds) as f64 / elapsed
}

/// Allocation count across a steady publish loop. `every` = 1 charges
/// every dispatch, the worst case for the attribution paths; the warm-up
/// rounds grow the tables, sketches, and label families to their
/// steady-state footprint first.
fn measure_steady_allocs(subs: &[Subscription], events: &[Arc<Event>], every: u64) -> u64 {
    let broker = start_broker(every);
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    for _ in 0..2 {
        for e in events {
            broker.publish_arc(Arc::clone(e)).expect("publish");
        }
        broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
        for rx in &receivers {
            while rx.try_recv().is_ok() {}
        }
    }
    let before = crate::alloc::allocation_count();
    for _ in 0..STEADY_ROUNDS {
        for burst in events.chunks(PUBLISH_BURST) {
            for e in burst {
                broker.publish_arc(Arc::clone(e)).expect("publish");
            }
            broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
        }
    }
    let allocs = crate::alloc::allocation_count().saturating_sub(before);
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();
    allocs
}

/// Runs a full workload at 1-in-`every` and compares attributed totals
/// against the stage histograms. Returns
/// `(match error, deliver error, samples, exact)` where the errors are
/// relative and `exact` means both scaled sums equal the histogram sums
/// to the nanosecond.
fn measure_reconciliation(
    subs: &[Subscription],
    events: &[Arc<Event>],
    rounds: usize,
    every: u64,
) -> (f64, f64, u64, bool) {
    let broker = start_broker(every);
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    for _ in 0..rounds {
        for burst in events.chunks(PUBLISH_BURST) {
            for e in burst {
                broker.publish_arc(Arc::clone(e)).expect("publish");
            }
            broker.flush_timeout(FLUSH_DEADLINE).expect("flush");
        }
    }
    let report = broker.costs();
    let stages = broker.stage_latencies();
    let match_ns = stages.match_exact.sum().as_nanos() as u64
        + stages.match_thematic.sum().as_nanos() as u64
        + stages.match_cached.sum().as_nanos() as u64;
    let deliver_ns = stages.deliver.sum().as_nanos() as u64;
    let rel_err = |estimated: u64, actual: u64| -> f64 {
        if actual == 0 {
            return if estimated == 0 { 0.0 } else { f64::INFINITY };
        }
        (estimated as f64 - actual as f64).abs() / actual as f64
    };
    let err_match = rel_err(report.estimated_match_ns(), match_ns);
    let err_deliver = rel_err(report.estimated_deliver_ns(), deliver_ns);
    let exact =
        report.estimated_match_ns() == match_ns && report.estimated_deliver_ns() == deliver_ns;
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    broker.close();
    (err_match, err_deliver, report.samples, exact)
}

/// Runs the full cost gate; see the module docs for the checks.
pub fn run_cost_gate(cfg: &CostGateConfig) -> CostGateResult {
    let eval = EvalConfig::tiny();
    let workload = Workload::generate(&eval);
    let events: Vec<Arc<Event>> = workload
        .events()
        .iter()
        .take(128)
        .cloned()
        .map(Arc::new)
        .collect();
    let subs: Vec<Subscription> = workload.subscriptions().iter().take(8).cloned().collect();
    let every = cfg.sample_every.max(1);

    // Interleave the sides so drift (thermal, competing load) hits both
    // equally; best-of-N per side is the stable point estimate. The gate
    // bounds attribution's true cost from above, so a comparison still
    // over the ceiling is re-measured (up to two more passes) and the
    // lowest observed overhead kept: any clean window suffices, one
    // noisy window cannot fail the run.
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut overhead = f64::INFINITY;
    for _attempt in 0..3 {
        let mut off = 0.0f64;
        let mut on = 0.0f64;
        for _ in 0..cfg.trials.max(1) {
            off = off.max(measure_throughput(&subs, &events, cfg.rounds, 0));
            on = on.max(measure_throughput(&subs, &events, cfg.rounds, every));
        }
        let pass_overhead = 1.0 - on / off.max(1e-9);
        if pass_overhead < overhead {
            overhead = pass_overhead;
            best_off = off;
            best_on = on;
        }
        if overhead <= cfg.max_overhead {
            break;
        }
    }

    let steady_allocs_off = measure_steady_allocs(&subs, &events, 0);
    let steady_allocs_on = measure_steady_allocs(&subs, &events, 1);
    // Deliver spans are tens of nanoseconds with rare microsecond spikes,
    // so a single sampled window can land far off the histogram total by
    // luck of the tail. The estimator is unbiased (k = 1 is exact, checked
    // below); one in-tolerance window proves it, so keep the best of up
    // to three.
    let mut err_match = f64::INFINITY;
    let mut err_deliver = f64::INFINITY;
    let mut samples = 0;
    for _attempt in 0..3 {
        let (m, d, s, _) = measure_reconciliation(&subs, &events, RECONCILE_ROUNDS, every);
        if m.max(d) < err_match.max(err_deliver) {
            err_match = m;
            err_deliver = d;
            samples = s;
        }
        if err_match.max(err_deliver) <= cfg.max_reconcile_error {
            break;
        }
    }
    let (_, _, _, k1_exact) = measure_reconciliation(&subs, &events, STEADY_ROUNDS, 1);

    let mut violations = Vec::new();
    if overhead > cfg.max_overhead {
        violations.push(format!(
            "cost-attribution overhead {:.2}% exceeds the {:.2}% ceiling \
             ({best_on:.0} ev/s on vs {best_off:.0} ev/s off)",
            overhead * 100.0,
            cfg.max_overhead * 100.0,
        ));
    }
    let extra = steady_allocs_on.saturating_sub(steady_allocs_off);
    if extra > cfg.max_extra_allocs {
        violations.push(format!(
            "k=1 steady publish loop allocated {extra} more times than the \
             attribution-off loop ({steady_allocs_on} vs {steady_allocs_off}, max {})",
            cfg.max_extra_allocs,
        ));
    }
    if samples == 0 {
        violations.push(String::from(
            "reconciliation run charged zero samples; the sampler never fired",
        ));
    }
    if err_match > cfg.max_reconcile_error {
        violations.push(format!(
            "match reconciliation error {:.1}% exceeds the {:.1}% tolerance at k={every}",
            err_match * 100.0,
            cfg.max_reconcile_error * 100.0,
        ));
    }
    if err_deliver > cfg.max_reconcile_error {
        violations.push(format!(
            "deliver reconciliation error {:.1}% exceeds the {:.1}% tolerance at k={every}",
            err_deliver * 100.0,
            cfg.max_reconcile_error * 100.0,
        ));
    }
    if !k1_exact {
        violations.push(String::from(
            "k=1 attribution did not reconcile exactly against the stage histograms",
        ));
    }

    CostGateResult {
        baseline_events_per_sec: best_off,
        cost_events_per_sec: best_on,
        overhead,
        steady_allocs_off,
        steady_allocs_on,
        sample_every: every,
        samples,
        reconcile_error_match: err_match,
        reconcile_error_deliver: err_deliver,
        k1_exact,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_json_is_parseable() {
        let result = CostGateResult {
            baseline_events_per_sec: 100_000.0,
            cost_events_per_sec: 99_700.0,
            overhead: 0.003,
            steady_allocs_off: 10,
            steady_allocs_on: 10,
            sample_every: 64,
            samples: 512,
            reconcile_error_match: 0.04,
            reconcile_error_deliver: 0.06,
            k1_exact: true,
            violations: vec![String::from("said \"so\"")],
        };
        let parsed: JsonValue = serde_json::from_str(&result.render_json()).expect("valid JSON");
        let entries = parsed.as_map().expect("object");
        assert_eq!(
            value_get(entries, "passed").and_then(JsonValue::as_bool),
            Some(false)
        );
        assert_eq!(
            value_get(entries, "extra_allocs").and_then(JsonValue::as_u64),
            Some(0)
        );
        assert_eq!(
            value_get(entries, "k1_exact").and_then(JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn config_from_json_overrides_only_present_keys() {
        let cfg =
            config_from_json("{\"max_overhead\": 0.05, \"sample_every\": 32, \"ignored\": true}")
                .expect("valid baseline");
        assert!((cfg.max_overhead - 0.05).abs() < 1e-12);
        assert_eq!(cfg.sample_every, 32);
        // Untouched keys keep their defaults.
        assert_eq!(
            cfg.max_extra_allocs,
            CostGateConfig::default().max_extra_allocs
        );
        assert_eq!(cfg.rounds, CostGateConfig::default().rounds);
    }

    #[test]
    fn config_from_json_rejects_malformed_documents() {
        assert!(config_from_json("[]").is_err());
        assert!(config_from_json("{\"max_overhead\": \"lots\"}").is_err());
        assert!(config_from_json("not json").is_err());
    }

    #[test]
    fn reconciliation_is_exact_at_k_one_on_a_tiny_run() {
        let eval = EvalConfig::tiny();
        let workload = Workload::generate(&eval);
        let events: Vec<Arc<Event>> = workload
            .events()
            .iter()
            .take(32)
            .cloned()
            .map(Arc::new)
            .collect();
        let subs: Vec<Subscription> = workload.subscriptions().iter().take(4).cloned().collect();
        let (err_match, err_deliver, samples, exact) = measure_reconciliation(&subs, &events, 2, 1);
        assert!(exact, "k=1 must be exact (err {err_match} / {err_deliver})");
        assert!(samples > 0);
    }
}
