//! Adversarial overload-storm scenario with machine-readable output.
//!
//! `probe bench` runs this after the throughput scenarios and writes
//! `BENCH_overload.json`: a broker with overload control enabled is
//! driven into `Critical` by a uniformly slow matcher, a deliberately
//! tiny ingress queue, and never-drained subscribers; the document
//! records how far the load-state machine escalated, what the admission
//! controller shed, how the subscriber circuit breakers reacted, and how
//! long the broker took to walk back to `Healthy` once the storm
//! stopped. The recovery clock is the headline: an overload controller
//! that degrades but never recovers is just a slower outage.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tep::prelude::*;

use crate::throughput::ScenarioObserver;

/// Deadline for draining the storm backlog (most of it is shed, so this
/// is generous headroom, not an expected wait).
const FLUSH_DEADLINE: Duration = Duration::from_secs(120);

/// How long the post-storm poll waits for the state machine to walk back
/// to `Healthy` before declaring recovery failed.
const RECOVERY_DEADLINE: Duration = Duration::from_secs(30);

/// One observed load-state change, stamped relative to the first publish.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSample {
    /// Milliseconds since the storm's first publish.
    pub at_ms: f64,
    /// The state observed at that instant.
    pub state: String,
}

impl StateSample {
    fn to_json(&self) -> String {
        format!(
            "{{\"at_ms\":{:.3},\"state\":\"{}\"}}",
            self.at_ms, self.state
        )
    }
}

/// The measured outcome of the overload storm.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadStormResult {
    /// Scenario name (stable identifier, used as the JSON key).
    pub name: String,
    /// Events published during the storm.
    pub events_published: u64,
    /// Wall-clock seconds of the publish phase.
    pub storm_secs: f64,
    /// The most severe state the machine reached.
    pub peak_state: String,
    /// Whether the storm drove the machine all the way to `Critical`.
    pub reached_critical: bool,
    /// Load-state changes observed while polling (storm + recovery).
    pub timeline: Vec<StateSample>,
    /// State transitions counted by the controller itself.
    pub transitions: u64,
    /// Events shed because their publish deadline had expired.
    pub shed_deadline: u64,
    /// Events shed below the priority floor under `Critical`.
    pub shed_load: u64,
    /// Breaker trips (Closed → Open) across all subscribers.
    pub breaker_trips: u64,
    /// Notifications dropped at an open breaker.
    pub breaker_open_drops: u64,
    /// Notifications dropped on full subscriber channels.
    pub dropped_full: u64,
    /// Events fully processed (matched or shed).
    pub processed: u64,
    /// Notifications actually delivered despite the storm.
    pub notifications: u64,
    /// Whether the broker returned to `Healthy` within the deadline.
    pub recovered: bool,
    /// Milliseconds from the last publish to the first `Healthy` poll.
    pub recovery_ms: f64,
    /// The state observed when polling stopped.
    pub final_state: String,
}

impl OverloadStormResult {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"events_published\":{},\"storm_secs\":{:.6},",
                "\"peak_state\":\"{}\",\"reached_critical\":{},\"transitions\":{},",
                "\"shed_deadline\":{},\"shed_load\":{},\"breaker_trips\":{},",
                "\"breaker_open_drops\":{},\"dropped_full\":{},\"processed\":{},",
                "\"notifications\":{},\"recovered\":{},\"recovery_ms\":{:.3},",
                "\"final_state\":\"{}\",\"timeline\":[{}]}}"
            ),
            self.name,
            self.events_published,
            self.storm_secs,
            self.peak_state,
            self.reached_critical,
            self.transitions,
            self.shed_deadline,
            self.shed_load,
            self.breaker_trips,
            self.breaker_open_drops,
            self.dropped_full,
            self.processed,
            self.notifications,
            self.recovered,
            self.recovery_ms,
            self.final_state,
            self.timeline
                .iter()
                .map(StateSample::to_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{:<26} peak={} shed={}+{} trips={} open-drops={} recovered={} in {:.0}ms",
            self.name,
            self.peak_state,
            self.shed_deadline,
            self.shed_load,
            self.breaker_trips,
            self.breaker_open_drops,
            self.recovered,
            self.recovery_ms,
        )
    }
}

/// Renders the storm result as the `BENCH_overload.json` document.
pub fn render_json(result: &OverloadStormResult) -> String {
    format!("{{\n  \"storm\": {}\n}}\n", result.to_json())
}

/// Runs the adversarial overload storm and measures escalation, shedding,
/// breaker behavior, and recovery.
///
/// The broker is rigged so every overload reaction has to fire:
///
/// * every match call sleeps (latency fault at rate 1.0), so queue wait
///   blows through the `sensitive()` thresholds;
/// * the ingress queue is tiny, so fill hits 1.0 and back-pressure keeps
///   it there for the whole storm;
/// * most storm events carry a 2 ms TTL (shed by the deadline rule) or a
///   priority below the floor with no deadline (shed by the load rule),
///   so both shed counters move once the machine escalates;
/// * every eighth event is high-priority with no deadline and matches all
///   four subscribers, whose 4-slot channels are never drained during the
///   storm — consecutive delivery failures trip their breakers.
///
/// After the last publish the backlog is flushed (mostly by shedding),
/// the subscribers start draining again, and the load state is polled
/// until `Healthy`.
pub fn run_overload_storm(observer: &ScenarioObserver) -> OverloadStormResult {
    let deliverable = parse_event("{storm: on, kind: deliverable}").expect("event");
    let sheddable = parse_event("{storm: on, kind: sheddable}").expect("event");
    let subscription = parse_subscription("{storm= on}").expect("subscription");

    let overload = OverloadConfig {
        shed_priority_floor: 50,
        ..OverloadConfig::sensitive()
    };
    let mut config = BrokerConfig::default()
        .with_workers(2)
        .with_overload_control(overload);
    config.queue_capacity = 32;
    config.notification_capacity = 4;

    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(0x570A).with_latency(1.0, Duration::from_micros(500)),
    ));
    let broker = Arc::new(Broker::start(matcher, config));
    // Held but not drained during the storm: the point is to fill the
    // 4-slot channels and keep them full so the breakers see consecutive
    // failures.
    let receivers: Vec<_> = (0..4)
        .map(|_| broker.subscribe(subscription.clone()).expect("subscribe").1)
        .collect();
    observer("overload_storm", &broker);

    let mut timeline: Vec<StateSample> = Vec::new();
    let mut peak = LoadState::Healthy;
    let start = Instant::now();
    let sample = |broker: &Broker, timeline: &mut Vec<StateSample>, peak: &mut LoadState| {
        let state = broker.load_state().unwrap_or(LoadState::Healthy);
        if state > *peak {
            *peak = state;
        }
        if timeline.last().map(|s| s.state.as_str()) != Some(state.as_str()) {
            timeline.push(StateSample {
                at_ms: start.elapsed().as_secs_f64() * 1e3,
                state: state.as_str().to_string(),
            });
        }
        state
    };
    sample(&broker, &mut timeline, &mut peak);

    const EVENTS: usize = 1536;
    for i in 0..EVENTS {
        let (event, options) = if i % 8 == 0 {
            // Survives admission control; its four deliveries hammer the
            // full subscriber channels and feed the breakers.
            (
                deliverable.clone(),
                PublishOptions::default().with_priority(200),
            )
        } else if i % 8 == 4 {
            // No deadline, but below the priority floor: shed under
            // `Critical` by the load rule rather than the deadline rule.
            (
                sheddable.clone(),
                PublishOptions::default().with_priority(10),
            )
        } else {
            // Expired-deadline / below-floor fodder for the shed counters.
            (
                sheddable.clone(),
                PublishOptions::default()
                    .with_ttl(Duration::from_millis(2))
                    .with_priority(10),
            )
        };
        broker.publish_with(event, options).expect("publish");
        sample(&broker, &mut timeline, &mut peak);
    }
    let storm_secs = start.elapsed().as_secs_f64();

    // Storm over: drain the backlog (the shed path counts toward
    // `processed`, so this terminates fast even though matching is slow).
    broker.flush_timeout(FLUSH_DEADLINE).expect("flush");

    // Recovery: subscribers resume draining, so channel fill and the
    // queue-wait EWMA can both decay back to the healthy band.
    let recovery_start = Instant::now();
    let mut recovered = false;
    while recovery_start.elapsed() < RECOVERY_DEADLINE {
        for rx in &receivers {
            while rx.try_recv().is_ok() {}
        }
        if sample(&broker, &mut timeline, &mut peak) == LoadState::Healthy {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let recovery_ms = recovery_start.elapsed().as_secs_f64() * 1e3;
    let final_state = sample(&broker, &mut timeline, &mut peak);

    let stats = broker.stats();
    let transitions = broker
        .overload_json()
        .lines()
        .find_map(|l| {
            l.trim()
                .strip_prefix("\"transitions\": ")?
                .trim_end_matches(',')
                .parse::<u64>()
                .ok()
        })
        .unwrap_or(0);
    drop(receivers);
    broker.close();

    OverloadStormResult {
        name: "overload_storm".to_string(),
        events_published: EVENTS as u64,
        storm_secs,
        peak_state: peak.as_str().to_string(),
        reached_critical: peak == LoadState::Critical,
        timeline,
        transitions,
        shed_deadline: stats.shed_deadline,
        shed_load: stats.shed_load,
        breaker_trips: stats.breaker_trips,
        breaker_open_drops: stats.breaker_open,
        dropped_full: stats.dropped_full,
        processed: stats.processed,
        notifications: stats.notifications,
        recovered,
        recovery_ms,
        final_state: final_state.as_str().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OverloadStormResult {
        OverloadStormResult {
            name: "overload_storm".into(),
            events_published: 1536,
            storm_secs: 1.25,
            peak_state: "critical".into(),
            reached_critical: true,
            timeline: vec![
                StateSample {
                    at_ms: 0.0,
                    state: "healthy".into(),
                },
                StateSample {
                    at_ms: 12.5,
                    state: "critical".into(),
                },
            ],
            transitions: 4,
            shed_deadline: 900,
            shed_load: 200,
            breaker_trips: 3,
            breaker_open_drops: 40,
            dropped_full: 60,
            processed: 1536,
            notifications: 16,
            recovered: true,
            recovery_ms: 8.0,
            final_state: "healthy".into(),
        }
    }

    #[test]
    fn json_is_well_formed_and_machine_readable() {
        let doc = render_json(&sample());
        let parsed: serde_json::JsonValue = serde_json::from_str(&doc).expect("valid JSON");
        let root = parsed.as_map().expect("object root");
        let storm = serde::value_get(root, "storm")
            .and_then(|v| v.as_map())
            .expect("storm object");
        let field = |k: &str| serde::value_get(storm, k).expect(k);
        assert_eq!(field("peak_state").as_str(), Some("critical"));
        assert_eq!(field("reached_critical").as_bool(), Some(true));
        assert_eq!(field("shed_deadline").as_u64(), Some(900));
        assert_eq!(field("recovered").as_bool(), Some(true));
        let timeline = field("timeline").as_seq().expect("timeline array");
        assert_eq!(timeline.len(), 2);
        let entry = timeline[1].as_map().expect("sample object");
        assert_eq!(
            serde::value_get(entry, "state").and_then(|v| v.as_str()),
            Some("critical")
        );
    }

    #[test]
    fn summary_mentions_peak_and_recovery() {
        let line = sample().summary();
        assert!(line.contains("peak=critical"));
        assert!(line.contains("recovered=true"));
    }

    #[test]
    fn storm_reaches_critical_sheds_and_recovers() {
        let r = run_overload_storm(&|_, _| {});
        assert!(
            r.reached_critical,
            "storm must drive the machine to critical: {r:?}"
        );
        assert!(
            r.shed_deadline > 0 && r.shed_load > 0,
            "storm must exercise both shed rules: {r:?}"
        );
        assert!(r.breaker_trips > 0, "storm must trip breakers: {r:?}");
        assert!(r.recovered, "broker must walk back to healthy: {r:?}");
        assert_eq!(r.final_state, "healthy");
        assert_eq!(
            r.processed, r.events_published,
            "every accepted event is processed exactly once"
        );
    }
}
