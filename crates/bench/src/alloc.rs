//! Process-wide heap-allocation accounting.
//!
//! This module is the **safe half** of the counting allocator: a global
//! counter plus its accessors. The `unsafe` [`GlobalAlloc`] pass-through
//! that feeds it lives in `src/counting_alloc.rs` and is included with
//! `#[path]` by the binaries that opt in (`probe`, the `zero_alloc`
//! integration test) — registering a `#[global_allocator]` is a
//! per-binary decision, and keeping the `unsafe` out of the library lets
//! it stay `#![forbid(unsafe_code)]`.
//!
//! When no counting allocator is registered (the `repro` binary, the
//! Criterion benches) the counter simply stays at zero, so
//! [`allocation_count`] deltas read as 0 allocations — callers that
//! report per-event figures should treat 0 as "not measured" only when
//! they know no allocator was installed.
//!
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

use std::sync::atomic::{AtomicU64, Ordering};

/// Heap acquisitions (`alloc` + `alloc_zeroed` + `realloc`) recorded
/// since process start. Frees are deliberately not tracked: the
/// steady-state guarantee is about *acquiring* memory on the hot path.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Records one heap acquisition. Called by the counting allocator on
/// every `alloc`/`alloc_zeroed`/`realloc`; must never allocate itself.
/// Relaxed ordering: the count is a diagnostic total, not a
/// synchronization edge.
#[inline]
pub fn record_allocation() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total heap acquisitions recorded so far, across all threads. Take a
/// reading before and after a region and subtract to count the region's
/// allocations (plus whatever concurrent threads did — measure with the
/// process otherwise quiet).
#[inline]
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_advances_the_counter() {
        // `>=`: other tests in this binary may record concurrently.
        let before = allocation_count();
        record_allocation();
        record_allocation();
        assert!(allocation_count() >= before + 2);
    }
}
