//! Steady-state zero-allocation guarantee for the exact-match hot path.
//!
//! Registers the counting global allocator (the same `#[path]` include
//! the `probe` binary uses), warms a broker until every reusable buffer
//! has reached its high-water mark, then asserts that a sustained
//! publish→dequeue→match→drain run performs **zero** heap allocations:
//! the `Arc<Event>` is wrapped once by the caller, the channel ring and
//! worker batch/inflight/candidate scratches are pre-sized, stat shards
//! and histograms are wait-free fixed arrays, and `ExactMatcher`'s
//! no-match verdict never touches the heap.

#[path = "../src/counting_alloc.rs"]
mod counting_alloc;

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;

const FLUSH: Duration = Duration::from_secs(60);

#[test]
fn exact_no_match_steady_state_allocates_nothing() {
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(1),
    );
    // A subscription that never matches: the steady state under test is
    // the dominant publish→match→miss path, which must stay off the heap.
    let never = Subscription::builder()
        .predicate_exact("device", "never-present")
        .build()
        .expect("subscription");
    let (_id, _rx) = broker.subscribe(never).expect("subscribe");
    let event = Arc::new(
        Event::builder()
            .tuple("device", "computer")
            .tuple("office", "room 112")
            .build()
            .expect("event"),
    );

    // Warmup: first-touch growth (worker candidate scratch, OS-level
    // lazy init in mutexes/condvars) happens here, outside the window.
    for _ in 0..512 {
        broker.publish_arc(Arc::clone(&event)).expect("publish");
    }
    broker.flush_timeout(FLUSH).expect("warmup flush");

    let before = tep_bench::alloc::allocation_count();
    for _ in 0..2048 {
        broker.publish_arc(Arc::clone(&event)).expect("publish");
    }
    broker.flush_timeout(FLUSH).expect("flush");
    let allocated = tep_bench::alloc::allocation_count() - before;

    assert_eq!(
        allocated, 0,
        "steady-state exact no-match path performed {allocated} heap allocations \
         over 2048 events; the hot path must be allocation-free"
    );
    broker.close();
}

#[test]
fn theme_routed_steady_state_allocates_nothing() {
    // The regression under test: the old routing table built a fresh
    // candidate `Vec` (plus a dedup set) per event on the ThemeOverlap
    // path. The subscription index serves candidates from the worker's
    // reusable scratch, so the routed path must now hold the same
    // zero-allocation guarantee as the broadcast path above.
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default()
            .with_workers(1)
            .with_routing_policy(RoutingPolicy::ThemeOverlap),
    );
    // A mixed population exercising every candidate source: two themed
    // subscriptions sharing a tag with the event (one a predicate subset
    // of the other, so a covering edge is live), one disjoint theme that
    // must be skipped without a test, and one theme-less broadcast entry.
    let subs = [
        Subscription::builder()
            .theme_tag("power")
            .predicate_exact("device", "never-present")
            .build()
            .expect("subscription"),
        Subscription::builder()
            .theme_tag("power")
            .predicate_exact("device", "never-present")
            .predicate_exact("office", "nowhere")
            .build()
            .expect("subscription"),
        Subscription::builder()
            .theme_tag("transport")
            .predicate_exact("device", "never-present")
            .build()
            .expect("subscription"),
        Subscription::builder()
            .predicate_exact("office", "never-present")
            .build()
            .expect("subscription"),
    ];
    for sub in subs {
        let (_id, _rx) = broker.subscribe(sub).expect("subscribe");
    }
    let event = Arc::new(
        Event::builder()
            .theme_tag("power")
            .theme_tag("grid")
            .tuple("device", "computer")
            .tuple("office", "room 112")
            .build()
            .expect("event"),
    );

    // Warmup grows the dispatch scratch to the index high-water mark and
    // seeds the interner's theme front cache for this tag list.
    for _ in 0..512 {
        broker.publish_arc(Arc::clone(&event)).expect("publish");
    }
    broker.flush_timeout(FLUSH).expect("warmup flush");

    let before = tep_bench::alloc::allocation_count();
    for _ in 0..2048 {
        broker.publish_arc(Arc::clone(&event)).expect("publish");
    }
    broker.flush_timeout(FLUSH).expect("flush");
    let allocated = tep_bench::alloc::allocation_count() - before;

    assert_eq!(
        allocated, 0,
        "steady-state theme-routed no-match path performed {allocated} heap \
         allocations over 2048 events; candidate collection must reuse the \
         worker scratch"
    );
    broker.close();
}
