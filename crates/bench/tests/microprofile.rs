//! Manual micro-profiling aid for the seed_thematic_broadcast hot path.
//!
//! Ignored by default; run with
//! `cargo test --release -p tep-bench --test microprofile -- --ignored --nocapture`
//! to print a per-component cost breakdown of one thematic match test.

use std::time::Instant;
use tep::prelude::*;
use tep::semantics::{intern_term, theme_for_tags};
use tep_eval::{EvalConfig, MatcherStack, Workload};

#[test]
#[ignore = "manual profiling aid, run with --ignored --nocapture"]
fn thematic_match_cost_breakdown() {
    let cfg = EvalConfig::tiny();
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);
    let th = Thesaurus::eurovoc_like();
    let domain_tags: Vec<String> = Domain::ALL
        .iter()
        .map(|d| th.top_terms(*d)[0].as_str().to_string())
        .collect();
    let events: Vec<Event> = workload
        .events()
        .iter()
        .take(128)
        .map(|e| e.with_theme_tags(domain_tags.clone()))
        .collect();
    let subs: Vec<Subscription> = workload
        .subscriptions()
        .iter()
        .take(8)
        .map(|s| s.with_theme_tags(domain_tags.clone()))
        .collect();
    let matcher = stack.thematic_cached();

    // Warm every cache exactly like a bench round does.
    for s in &subs {
        matcher.prepare_subscription(s);
        for e in &events {
            let _ = matcher.match_event(s, e);
        }
    }

    let tests = subs.len() * events.len();
    let rounds = 8;

    let start = Instant::now();
    let mut matched = 0usize;
    for _ in 0..rounds {
        for s in &subs {
            for e in &events {
                if !matcher.match_event(s, e).is_empty() {
                    matched += 1;
                }
            }
        }
    }
    let full = start.elapsed();
    println!(
        "match_event       {:>8.0} ns/test   ({} tests, {} matched)",
        full.as_nanos() as f64 / (tests * rounds) as f64,
        tests * rounds,
        matched
    );

    let (n, m) = (subs[0].predicates().len(), events[0].tuples().len());
    println!("shape             {n} predicates x {m} tuples");
    let mut pred_terms = std::collections::HashSet::new();
    let mut tuple_terms = std::collections::HashSet::new();
    for s in &subs {
        for p in s.predicates() {
            pred_terms.insert(p.attribute().to_string());
            pred_terms.insert(p.value().to_string());
        }
    }
    for e in &events {
        for t in e.tuples() {
            tuple_terms.insert(t.attribute().to_string());
            tuple_terms.insert(t.value().to_string());
        }
    }
    println!(
        "vocab             {} pred terms x {} tuple terms (≤ {} measure keys)",
        pred_terms.len(),
        tuple_terms.len(),
        pred_terms.len() * tuple_terms.len()
    );

    let start = Instant::now();
    for _ in 0..rounds {
        for s in &subs {
            for e in &events {
                std::hint::black_box(matcher.similarity_matrix(s, e));
            }
        }
    }
    let matrix = start.elapsed();
    println!(
        "similarity_matrix {:>8.0} ns/test   (allocating unpruned build)",
        matrix.as_nanos() as f64 / (tests * rounds) as f64
    );

    {
        use tep::semantics::SemanticMeasure;
        let measure = matcher.measure();
        let ths = theme_for_tags(subs[0].theme_tags()).0;
        let the = theme_for_tags(events[0].theme_tags()).0;
        let pred_ids: Vec<_> = pred_terms.iter().map(|t| intern_term(t)).collect();
        let tuple_ids: Vec<_> = tuple_terms.iter().map(|t| intern_term(t)).collect();
        let probes = pred_ids.len() * tuple_ids.len();
        for &p in &pred_ids {
            for &t in &tuple_ids {
                std::hint::black_box(measure.relatedness_ids(p, ths, t, the));
            }
        }
        let start = Instant::now();
        let mut acc = 0.0;
        for _ in 0..4 {
            for &p in &pred_ids {
                for &t in &tuple_ids {
                    acc += measure.relatedness_ids(p, ths, t, the);
                }
            }
        }
        let rel = start.elapsed();
        println!(
            "relatedness_ids   {:>8.0} ns/call   ({} probes, acc={acc:.1})",
            rel.as_nanos() as f64 / (probes * 4) as f64,
            probes * 4
        );
    }

    let start = Instant::now();
    for _ in 0..rounds {
        for s in &subs {
            for e in &events {
                std::hint::black_box(theme_for_tags(s.theme_tags()));
                std::hint::black_box(theme_for_tags(e.theme_tags()));
            }
        }
    }
    let themes = start.elapsed();
    println!(
        "theme_for_tags x2 {:>8.0} ns/test",
        themes.as_nanos() as f64 / (tests * rounds) as f64
    );

    let start = Instant::now();
    for _ in 0..rounds {
        for s in &subs {
            for e in &events {
                for p in s.predicates() {
                    std::hint::black_box(intern_term(p.attribute()));
                    std::hint::black_box(intern_term(p.value()));
                }
                for t in e.tuples() {
                    std::hint::black_box(intern_term(t.attribute()));
                    std::hint::black_box(intern_term(t.value()));
                }
            }
        }
    }
    let interning = start.elapsed();
    println!(
        "interning         {:>8.0} ns/test",
        interning.as_nanos() as f64 / (tests * rounds) as f64
    );

    let start = Instant::now();
    for _ in 0..rounds {
        for s in &subs {
            for e in &events {
                std::hint::black_box(matcher.cache_miss_count());
                let _ = (s, e);
            }
        }
    }
    let miss = start.elapsed();
    println!(
        "cache_miss_count  {:>8.0} ns/test",
        miss.as_nanos() as f64 / (tests * rounds) as f64
    );
}
