//! Integration tests for the matching-quality observability layer: the
//! shadow quality sampler judged by the eval crate's ground-truth
//! oracle, its agreement with the offline population F1, and the
//! inertness of every dimensional/windowed/quality feature when left
//! disabled.
//!
//! Registered under `tep-bench` (not `tep`) because the live side needs
//! the broker and the offline side needs `tep-eval` — this test is
//! exactly the cross-crate seam the quality gate relies on.

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;
use tep_eval::metrics::thresholded_effectiveness;
use tep_eval::{EvalConfig, GroundTruthOracle, Workload};

const FLUSH: Duration = Duration::from_secs(60);

fn workload_slice(subs: usize, events: usize) -> (Workload, Vec<Subscription>, Vec<Event>) {
    let workload = Workload::generate(&EvalConfig::tiny());
    let s = workload
        .subscriptions()
        .iter()
        .take(subs)
        .cloned()
        .collect();
    let e = workload.events().iter().take(events).cloned().collect();
    (workload, s, e)
}

/// Publishes every event `rounds` times through a quality-sampled exact
/// broker and returns its live report.
fn live_report(
    oracle: &GroundTruthOracle,
    subs: &[Subscription],
    events: &[Event],
    every: u64,
    rounds: usize,
) -> QualityReport {
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(2),
    )
    .with_quality_sampling(every, Box::new(oracle.clone()));
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    for _ in 0..rounds {
        for e in events {
            broker.publish(e.clone()).expect("publish");
        }
    }
    broker.flush_timeout(FLUSH).expect("flush");
    let report = broker.quality().expect("sampling installed");
    for rx in &receivers {
        while rx.try_recv().is_ok() {}
    }
    report
}

/// The offline population quantity the live sampler estimates: every
/// judgeable pair, decided by the same matcher at the same threshold.
fn offline_f1(oracle: &GroundTruthOracle, subs: &[Subscription], events: &[Event]) -> f64 {
    let matcher = ExactMatcher::new();
    let threshold = BrokerConfig::default().delivery_threshold;
    thresholded_effectiveness(subs.iter().flat_map(|sub| {
        let matcher = &matcher;
        events.iter().filter_map(move |event| {
            let relevant = oracle.judge(sub, event)?;
            let result = matcher.match_event(sub, event);
            Some((!result.is_empty() && result.is_match(threshold), relevant))
        })
    }))
    .f1
}

#[test]
fn live_sampled_f1_agrees_with_offline_eval_f1() {
    let (workload, subs, events) = workload_slice(6, 96);
    let oracle = GroundTruthOracle::from_workload(&workload);
    let offline = offline_f1(&oracle, &subs, &events);

    // 1-in-1 sampling: the live confusion matrix pools exactly the
    // offline decisions (times `rounds`), so the F1s are bit-identical.
    let full = live_report(&oracle, &subs, &events, 1, 2);
    assert!(full.judged() > 0);
    assert_eq!(full.f1, offline, "k=1 live F1 must equal offline F1");

    // 1-in-7 sampling: the live F1 is an unbiased estimate and must land
    // within its own reported confidence interval of the population F1.
    // Sampling is a deterministic hash of (sequence, subscription), so
    // this holds reproducibly, not just in expectation.
    let sampled = live_report(&oracle, &subs, &events, 7, 10);
    assert!(
        sampled.judged() >= 100,
        "expected >=100 judged samples, got {}",
        sampled.judged()
    );
    let gap = (sampled.f1 - offline).abs();
    assert!(
        gap <= sampled.f1_ci_half_width().max(1e-9),
        "sampled F1 {:.4} vs offline {:.4}: gap {:.4} exceeds CI half-width {:.4}",
        sampled.f1,
        offline,
        gap,
        sampled.f1_ci_half_width(),
    );
}

#[test]
fn quality_report_surfaces_in_metrics_and_json() {
    let (workload, subs, events) = workload_slice(4, 64);
    let oracle = GroundTruthOracle::from_workload(&workload);
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(2),
    )
    .with_quality_sampling(1, Box::new(oracle));
    let _receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    for e in &events {
        broker.publish(e.clone()).expect("publish");
    }
    broker.flush_timeout(FLUSH).expect("flush");

    let prom = broker.metrics().render_prometheus();
    assert!(prom.contains("tep_quality_f1"), "missing F1 gauge:\n{prom}");
    assert!(prom.contains("tep_quality_samples_total"));
    let report = broker.quality().expect("sampling installed");
    let json = render_quality_json(&report);
    for key in ["\"f1\":", "\"precision\":", "\"recall\":", "\"drift\":"] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
}

#[test]
fn disabled_quality_and_dimensions_stay_inert() {
    let (_, subs, events) = workload_slice(4, 64);
    // Default config: no oracle, no labeled metrics, no window tick —
    // the observability tentpole must cost nothing and export nothing
    // unless asked for.
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(2),
    );
    let receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    for e in &events {
        broker.publish(e.clone()).expect("publish");
    }
    broker.flush_timeout(FLUSH).expect("flush");

    assert!(broker.quality().is_none(), "no oracle was installed");
    assert!(broker.top_themes(5).is_empty(), "top-k sketch is off");
    assert!(broker.window(Duration::from_secs(10)).is_none(), "no ticks");
    let prom = broker.metrics().render_prometheus();
    for series in [
        "tep_quality_",
        "tep_theme_match_tests_total",
        "tep_match_temperature_total",
        "tep_subscriber_notifications_total",
        "tep_published_rate",
    ] {
        assert!(!prom.contains(series), "{series} leaked into:\n{prom}");
    }
    // The pipeline itself still works: the exact matcher delivered
    // something for at least one subscription across the slice.
    let delivered: usize = receivers
        .iter()
        .map(|rx| std::iter::from_fn(|| rx.try_recv().ok()).count())
        .sum();
    assert_eq!(broker.stats().notifications as usize, delivered);
}

#[test]
fn enabled_dimensions_export_labeled_windowed_and_queue_series() {
    let (workload, subs, events) = workload_slice(4, 64);
    let oracle = GroundTruthOracle::from_workload(&workload);
    let tags = ["power".to_string(), "grid".to_string()];
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default()
            .with_workers(2)
            .with_labeled_metrics(true)
            .with_label_cardinality(8),
    )
    .with_quality_sampling(1, Box::new(oracle));
    let _receivers: Vec<_> = subs
        .iter()
        .map(|s| broker.subscribe(s.clone()).expect("subscribe").1)
        .collect();
    broker.tick_window();
    for e in &events {
        broker
            .publish(e.clone().with_theme_tags(tags.clone()))
            .expect("publish");
    }
    broker.flush_timeout(FLUSH).expect("flush");
    broker.tick_window();

    let window = broker.window(Duration::from_secs(10)).expect("two frames");
    assert_eq!(
        window.counter_delta("tep_published_total"),
        Some(events.len() as u64)
    );
    let top = broker.top_themes(5);
    assert!(
        top.iter().any(|(name, _)| name == "power"),
        "hot themes missing 'power': {top:?}"
    );
    let prom = broker.metrics().render_prometheus();
    for series in [
        "tep_theme_match_tests_total{theme=\"power\"}",
        "tep_published_rate{window=\"10s\"}",
        "tep_publish_queue_depth",
        "tep_subscriber_queue_depth_sum",
        "tep_quality_f1",
    ] {
        assert!(prom.contains(series), "{series} missing from:\n{prom}");
    }
}
