//! Integration tests for the pipeline observability layer: stage latency
//! histograms, the metrics registry export, the per-event trace ring,
//! match explanations, causal span trees, and the scrape endpoints.

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;

fn exact_broker(config: BrokerConfig) -> Broker {
    Broker::start(Arc::new(ExactMatcher::new()), config)
}

fn thematic_broker(config: BrokerConfig) -> Broker {
    let corpus = Corpus::generate(&CorpusConfig::small().with_num_docs(900));
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    Broker::start(
        Arc::new(ProbabilisticMatcher::new(
            ThematicEsaMeasure::new(pvsm),
            MatcherConfig::top1(),
        )),
        config,
    )
}

/// Under no-fault, no-overload conditions the stage histogram counts are
/// exact functions of the broker counters: one queue-wait sample per
/// processed event, one match sample per match test, one deliver sample
/// per notification.
#[test]
fn stage_latency_counts_reconcile_with_broker_counters() {
    let b = exact_broker(BrokerConfig::default().with_workers(2));
    let (_, rx) = b
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();
    let (_, _other) = b
        .subscribe(parse_subscription("{kind= other}").unwrap())
        .unwrap();
    for i in 0..500 {
        let kind = if i % 5 == 0 { "wanted" } else { "other" };
        b.publish(parse_event(&format!("{{kind: {kind}, seq: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();

    let stats = b.stats();
    let stages = b.stage_latencies();
    assert_eq!(stats.processed, 500);
    assert_eq!(
        stages.queue_wait.count(),
        stats.processed,
        "one queue-wait sample per processed event"
    );
    assert_eq!(
        stages.match_combined().count(),
        stats.match_tests,
        "one match sample per match test"
    );
    assert_eq!(
        stages.match_exact.count(),
        stats.match_tests,
        "exact-only subscriptions must all land in the exact bucket"
    );
    assert_eq!(stages.match_thematic.count(), 0);
    assert_eq!(stages.match_cached.count(), 0);
    assert_eq!(
        stages.deliver.count(),
        stats.notifications,
        "one deliver sample per admitted notification"
    );
    // `rx` sees only the "wanted" fifth; the rest went to `_other`.
    assert_eq!(rx.try_iter().count(), 100);
    assert_eq!(stats.notifications, 500);

    // Percentiles are monotone and bounded by the recorded max.
    for h in [&stages.queue_wait, &stages.match_exact, &stages.deliver] {
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
        assert!(h.sum() >= h.max(), "sum of samples is at least the max");
    }
    b.shutdown();
}

/// A thematic matcher's approximate subscriptions are classified by
/// cache temperature: the first pass over unseen event vocabulary pays
/// semantic-cache misses (thematic-cold), repeats are served warm.
#[test]
fn thematic_match_tests_split_by_cache_temperature() {
    let corpus = Corpus::generate(&CorpusConfig::small());
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    let matcher = ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm), MatcherConfig::top1());
    // A single worker keeps the miss-delta sampling free of concurrent
    // misses from other match tests.
    let b = Broker::start(Arc::new(matcher), BrokerConfig::default().with_workers(1));
    let (_, _rx) = b
        .subscribe(
            parse_subscription("({energy policy}, {type~= increased energy usage event~})")
                .unwrap(),
        )
        .unwrap();
    let event = parse_event(
        "({energy policy}, {type: increased energy consumption event, device: computer})",
    )
    .unwrap();
    b.publish(event.clone()).unwrap();
    b.flush().unwrap();
    let cold = b.stage_latencies();
    assert_eq!(
        cold.match_exact.count(),
        0,
        "an approximate subscription never lands in the exact bucket"
    );
    assert!(
        cold.match_thematic.count() >= 1,
        "first sight of the event vocabulary must pay a cache miss"
    );

    for _ in 0..5 {
        b.publish(event.clone()).unwrap();
    }
    b.flush().unwrap();
    let warm = b.stage_latencies();
    let stats = b.stats();
    assert_eq!(warm.match_combined().count(), stats.match_tests);
    assert!(
        warm.match_cached.count() >= 1,
        "repeat events must be served from warm caches"
    );
    b.shutdown();
}

/// The Prometheus text export carries every broker counter plus the
/// cumulative stage histograms; the JSON export parses and reports the
/// same counts.
#[test]
fn metrics_export_prometheus_and_json() {
    let b = exact_broker(BrokerConfig::default().with_workers(1));
    let (_, rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    for i in 0..8 {
        b.publish(parse_event(&format!("{{k: v, i: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();
    drop(rx);

    let text = b.metrics().render_prometheus();
    assert!(text.contains("# TYPE tep_published_total counter"));
    assert!(text.contains("tep_published_total 8"));
    assert!(text.contains("tep_match_tests_total 8"));
    assert!(text.contains("tep_notifications_total 8"));
    assert!(text.contains("# TYPE tep_live_workers gauge"));
    assert!(text.contains("tep_live_workers 1"));
    assert!(text.contains("# TYPE tep_stage_queue_wait_seconds histogram"));
    assert!(text.contains("tep_stage_queue_wait_seconds_bucket{le=\"+Inf\"} 8"));
    assert!(text.contains("tep_stage_queue_wait_seconds_count 8"));
    assert!(text.contains("tep_stage_queue_wait_seconds_sum "));
    assert!(text.contains("tep_stage_match_exact_seconds_count 8"));
    assert!(text.contains("tep_stage_deliver_seconds_count 8"));

    let json = b.metrics().render_json();
    assert!(json.contains("\"tep_published_total\": 8"));
    assert!(json.contains("\"tep_stage_queue_wait_seconds\": {\"count\": 8,"));
    assert!(json.contains("\"p99_ns\""));
    // Braces balance (cheap well-formedness check without a JSON parser).
    assert_eq!(
        json.matches(['{', '[']).count(),
        json.matches(['}', ']']).count()
    );
    b.shutdown();
}

/// With theme routing and tracing enabled, a routed event's trace shows
/// the candidate set after the skip, and the skip itself.
#[test]
fn trace_ring_records_routing_skips() {
    let config = BrokerConfig::default()
        .with_workers(1)
        .with_routing_policy(RoutingPolicy::ThemeOverlap)
        .with_trace_capacity(8);
    let b = exact_broker(config);
    let (_, power_rx) = b
        .subscribe(parse_subscription("({power}, {k= v})").unwrap())
        .unwrap();
    let (_, _transport_rx) = b
        .subscribe(parse_subscription("({transport}, {k= v})").unwrap())
        .unwrap();

    b.publish(parse_event("({power}, {k: v})").unwrap())
        .unwrap();
    b.flush().unwrap();
    let traces = b.traces();
    assert_eq!(traces.len(), 1);
    let t = &traces[0];
    assert_eq!(t.seq, 0);
    assert_eq!(t.candidates, 1, "only the power subscription is tested");
    assert_eq!(
        t.routing_skipped, 1,
        "the transport subscription is skipped"
    );
    assert_eq!(t.match_tests, 1);
    assert_eq!(t.notifications, 1);
    assert!(!t.quarantined);
    assert_eq!(power_rx.try_iter().count(), 1);

    // The ring is bounded: flooding it keeps only the newest entries.
    for i in 0..20 {
        b.publish(parse_event(&format!("({{power}}, {{k: v, i: n{i}}})")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();
    let traces = b.traces();
    assert_eq!(traces.len(), 8, "ring truncates to its capacity");
    assert_eq!(
        traces.last().unwrap().seq,
        20,
        "the newest event's trace survives"
    );
    b.shutdown();
}

/// Tracing is opt-in: with the default capacity of 0 the ring stays
/// empty no matter how much traffic flows.
#[test]
fn tracing_disabled_by_default() {
    let b = exact_broker(BrokerConfig::default().with_workers(1));
    let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    for i in 0..16 {
        b.publish(parse_event(&format!("{{k: v, i: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();
    assert!(b.traces().is_empty());
    // The stage histograms still record.
    assert_eq!(b.stage_latencies().queue_wait.count(), 16);
    b.shutdown();
}

/// A quarantined event's trace is flagged, with its retried match tests
/// counted.
#[test]
fn trace_flags_quarantined_events() {
    /// Panics on every `k: boom` event.
    #[derive(Debug)]
    struct BoomMatcher;
    impl Matcher for BoomMatcher {
        fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
            if event.value_of("k") == Some("boom") {
                panic!("injected observability fault");
            }
            ExactMatcher::new().match_event(subscription, event)
        }
    }
    // Silence the injected panic in test output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected observability fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let config = BrokerConfig::default()
        .with_workers(1)
        .with_max_match_attempts(2)
        .with_trace_capacity(4);
    let b = Broker::start(Arc::new(BoomMatcher), config);
    let (_, _rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
    b.publish(parse_event("{k: boom}").unwrap()).unwrap();
    b.flush_timeout(Duration::from_secs(10)).unwrap();
    let traces = b.traces();
    assert_eq!(traces.len(), 1);
    assert!(traces[0].quarantined);
    assert_eq!(traces[0].match_tests, 2, "both retry attempts are counted");
    assert_eq!(traces[0].notifications, 0);
    let _ = std::panic::take_hook();
    b.shutdown();
}

/// With the explain ring enabled, every match test — accepted or
/// rejected — leaves a full explanation: score vs. threshold, themes,
/// cache temperature, and per-predicate distances with the PVSM
/// projection dimensionalities.
#[test]
fn explain_last_reports_accepted_and_rejected_tests() {
    let b = thematic_broker(
        BrokerConfig::default()
            .with_workers(1)
            .with_explain_capacity(64),
    );
    let (hit, _hit_rx) = b
        .subscribe(
            parse_subscription(
                "({energy policy, building energy}, {type~= increased energy usage event~})",
            )
            .unwrap(),
        )
        .unwrap();
    let (miss, _miss_rx) = b
        .subscribe(parse_subscription("{kind= other}").unwrap())
        .unwrap();
    let event = parse_event(
        "({energy policy, building energy}, \
         {type: increased energy consumption event, device: kettle})",
    )
    .unwrap();
    b.publish(event.clone()).unwrap();
    b.flush().unwrap();

    let explanations = b.explain_last(16);
    assert_eq!(explanations.len(), 2, "one explanation per match test");

    let accepted = explanations.iter().find(|e| e.subscription == hit).unwrap();
    assert!(accepted.is_accepted());
    assert_eq!(accepted.outcome, MatchOutcome::Delivered);
    assert!(
        (accepted.threshold - 0.25).abs() < 1e-9,
        "the default delivery threshold is recorded"
    );
    assert!(accepted.score >= accepted.threshold);
    assert_eq!(
        accepted.temperature,
        CacheTemperature::ThematicCold,
        "first sight of the event vocabulary pays cache misses"
    );
    assert!(accepted
        .subscription_themes
        .iter()
        .any(|t| t == "energy policy"));
    assert!(accepted.event_themes.iter().any(|t| t == "building energy"));
    let detail = accepted
        .detail
        .as_ref()
        .expect("ring explanations carry full per-predicate detail");
    assert!(detail.mapped);
    let p = detail
        .predicates
        .iter()
        .find(|p| p.attribute == "type")
        .expect("the type predicate is explained");
    let vd = p
        .value_detail
        .as_ref()
        .expect("an approximate predicate explains its value relatedness");
    assert!(
        vd.distance.is_some(),
        "the raw distance behind 1/(1+d) is exposed"
    );
    assert!(
        vd.dims_projected_s <= vd.dims_full_s,
        "thematic projection may only shrink the PVSM dimensionality"
    );

    let rejected = explanations
        .iter()
        .find(|e| e.subscription == miss)
        .unwrap();
    assert!(!rejected.is_accepted());
    assert_eq!(
        rejected.temperature,
        CacheTemperature::Exact,
        "an exact-only subscription never touches the semantic caches"
    );

    // Re-publishing the same event serves the vocabulary from warm
    // caches, and the explanation says so.
    for _ in 0..5 {
        b.publish(event.clone()).unwrap();
    }
    b.flush().unwrap();
    let warm = b.explain_last(4);
    let last = warm.iter().rfind(|e| e.subscription == hit).unwrap();
    assert_eq!(last.temperature, CacheTemperature::CacheWarm);
    b.shutdown();
}

/// Explanations attach to notifications only for subscribers that opted
/// in via [`SubscribeOptions::explained`]; the ring stays independent.
#[test]
fn subscribe_with_attaches_explanations_only_when_opted_in() {
    let b = exact_broker(BrokerConfig::default().with_workers(1));
    let (_, plain_rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    let (_, rich_rx) = b
        .subscribe_with(
            parse_subscription("{k= v}").unwrap(),
            SubscribeOptions::explained(),
        )
        .unwrap();
    b.publish(parse_event("{k: v}").unwrap()).unwrap();
    b.flush().unwrap();

    let plain = plain_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(plain.explanation.is_none(), "explanations are opt-in");
    let rich = rich_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    let e = rich
        .explanation
        .expect("the opted-in subscriber gets the explanation");
    assert_eq!(e.outcome, MatchOutcome::Delivered);
    assert_eq!(e.temperature, CacheTemperature::Exact);
    assert!(e.detail.is_some());
    assert!(
        b.explain_last(8).is_empty(),
        "notification explanations do not require the ring"
    );
    b.shutdown();
}

/// A sampled event's journey reconstructs as a causal tree:
/// publish → route → match → deliver.
#[test]
fn span_tree_reconstructs_an_event_journey() {
    let b = exact_broker(
        BrokerConfig::default()
            .with_workers(1)
            .with_span_sampling(1)
            .with_span_capacity(64),
    );
    let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    b.publish(parse_event("{k: v}").unwrap()).unwrap();
    b.flush().unwrap();

    let tree = b.span_tree(0);
    assert_eq!(tree.len(), 1, "one root: the publish span");
    let publish = &tree[0];
    assert_eq!(publish.record.name, "publish");
    assert_eq!(publish.record.seq, 0);
    assert_eq!(publish.size(), 4, "publish → route → match → deliver");
    assert_eq!(publish.children.len(), 1);
    let route = &publish.children[0];
    assert_eq!(route.record.name, "route");
    let match_span = route
        .children
        .iter()
        .find(|n| n.record.name == "match")
        .expect("the match test is spanned");
    assert_eq!(match_span.children.len(), 1);
    assert_eq!(match_span.children[0].record.name, "deliver");
    b.shutdown();
}

/// `with_span_sampling(k)` samples exactly the events whose sequence
/// number is a multiple of k — deterministic, not probabilistic.
#[test]
fn span_sampling_is_deterministic_one_in_k() {
    let b = exact_broker(
        BrokerConfig::default()
            .with_workers(1)
            .with_span_sampling(3)
            .with_span_capacity(256),
    );
    let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    for i in 0..9 {
        b.publish(parse_event(&format!("{{k: v, i: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();

    let mut sampled: Vec<u64> = b.spans().iter().map(|s| s.seq).collect();
    sampled.sort_unstable();
    sampled.dedup();
    assert_eq!(sampled, vec![0, 3, 6]);
    for seq in [0, 3, 6] {
        assert_eq!(
            b.span_tree(seq).len(),
            1,
            "each sampled event has a complete tree"
        );
    }
    for seq in [1, 2, 4, 5, 7, 8] {
        assert!(b.span_tree(seq).is_empty());
    }
    b.shutdown();
}

/// A quarantined event's explanations carry the panic reason, and its
/// span tree ends in a quarantine leaf.
#[test]
fn quarantined_explanations_carry_the_panic_reason() {
    /// Panics on every event.
    #[derive(Debug)]
    struct BoomMatcher;
    impl Matcher for BoomMatcher {
        fn match_event(&self, _subscription: &Subscription, _event: &Event) -> MatchResult {
            panic!("injected observability fault");
        }
    }
    // Silence the injected panic in test output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected observability fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let config = BrokerConfig::default()
        .with_workers(1)
        .with_max_match_attempts(2)
        .with_explain_capacity(16)
        .with_span_sampling(1);
    let b = Broker::start(Arc::new(BoomMatcher), config);
    let (_, _rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
    b.publish(parse_event("{k: boom}").unwrap()).unwrap();
    b.flush_timeout(Duration::from_secs(10)).unwrap();

    let explanations = b.explain_last(16);
    assert_eq!(
        explanations.len(),
        1,
        "the whole retry budget collapses into one explanation"
    );
    let e = &explanations[0];
    match &e.outcome {
        MatchOutcome::Panicked { reason } => {
            assert!(reason.contains("injected observability fault"))
        }
        other => panic!("expected a panicked outcome, got {other:?}"),
    }
    assert!(
        e.detail.is_none(),
        "a panicked test has no result to explain"
    );
    assert!(!e.is_accepted());
    assert_eq!(b.stats().match_tests, 2, "both attempts were counted");

    fn names<'a>(nodes: &'a [SpanNode], out: &mut Vec<&'a str>) {
        for n in nodes {
            out.push(n.record.name);
            names(&n.children, out);
        }
    }
    let tree = b.span_tree(0);
    assert_eq!(tree.len(), 1, "one publish root despite the retries");
    let mut all = Vec::new();
    names(&tree, &mut all);
    assert_eq!(
        all.iter().filter(|n| **n == "match").count(),
        1,
        "one match span covers the whole retry budget"
    );
    assert!(
        all.contains(&"quarantine"),
        "the dead-letter move is spanned"
    );
    let _ = std::panic::take_hook();
    b.shutdown();
}

/// The explain ring reconciles exactly with the broker counters: one
/// explanation per match test, none for routing-skipped candidates, and
/// delivered outcomes equal to the notification count.
#[test]
fn explanation_counts_reconcile_with_match_counters() {
    let config = BrokerConfig::default()
        .with_workers(1)
        .with_routing_policy(RoutingPolicy::ThemeOverlap)
        .with_explain_capacity(1024)
        .with_overload_control(OverloadConfig::default());
    let b = exact_broker(config);
    let (_, _power_rx) = b
        .subscribe(parse_subscription("({power}, {k= v})").unwrap())
        .unwrap();
    let (_, _transport_rx) = b
        .subscribe(parse_subscription("({transport}, {k= v})").unwrap())
        .unwrap();
    for i in 0..40 {
        let theme = if i % 2 == 0 { "power" } else { "transport" };
        b.publish(parse_event(&format!("({{{theme}}}, {{k: v, i: n{i}}})")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();

    let stats = b.stats();
    let explanations = b.explain_last(1024);
    assert_eq!(
        explanations.len() as u64,
        stats.match_tests,
        "every match test leaves exactly one explanation"
    );
    assert_eq!(stats.match_tests, 40, "theme routing halves the candidates");
    assert_eq!(
        stats.routing_skipped, 40,
        "skipped candidates leave no explanation"
    );
    let delivered = explanations
        .iter()
        .filter(|e| e.outcome == MatchOutcome::Delivered)
        .count() as u64;
    assert_eq!(delivered, stats.notifications);

    // Shed events are admission-controlled away *before* matching, so
    // they move `processed` and the shed counters but leave no
    // explanation and no match test behind.
    b.force_load_state(Some(LoadState::Overloaded));
    let expired = std::time::Instant::now() - Duration::from_millis(50);
    for i in 0..4 {
        b.publish_with(
            parse_event(&format!("({{power}}, {{k: v, i: shed{i}}})")).unwrap(),
            PublishOptions::default().with_deadline(expired),
        )
        .unwrap();
    }
    // Keep the forced state until every event is dequeued: shedding is
    // decided at dequeue time, so lifting it before the flush races the
    // worker (shed events still count as processed, so flush terminates).
    b.flush().unwrap();
    b.force_load_state(None);

    let stats = b.stats();
    assert_eq!(stats.processed, 44, "shed events still count as processed");
    assert_eq!(stats.shed_deadline, 4);
    assert_eq!(stats.shed_total(), 4);
    assert_eq!(stats.match_tests, 40, "shed events never reach the matcher");
    assert_eq!(
        b.explain_last(1024).len() as u64,
        stats.match_tests,
        "shed events leave no explanation"
    );
    b.shutdown();
}

/// The split drop accounting reconciles with explanation outcomes: every
/// above-threshold match is either `Delivered` (== `notifications`) or
/// `DeliveryDropped` (== full-channel drops + open-breaker drops +
/// disconnect drops, i.e. `delivery_failures()`), and the breaker-open
/// share is counted separately from the policy drops.
#[test]
fn drop_accounting_reconciles_with_delivery_outcomes() {
    let overload = OverloadConfig {
        breaker: BreakerConfig {
            failure_threshold: 3,
            open_backoff_ms: 60_000,
            max_backoff_ms: 60_000,
            half_open_probes: 1,
            reap_after_cycles: 1_000,
            jitter_seed: 7,
        },
        ..OverloadConfig::default()
    };
    let mut config = BrokerConfig::default()
        .with_workers(1)
        .with_explain_capacity(1024)
        .with_overload_control(overload);
    config.notification_capacity = 2;
    let b = exact_broker(config);
    let (_, rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    for i in 0..10 {
        b.publish(parse_event(&format!("{{k: v, i: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();

    let stats = b.stats();
    assert_eq!(stats.notifications, 2, "the channel holds two");
    assert_eq!(stats.dropped_full, 3, "three failures close the breaker");
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(stats.breaker_open, 5, "the rest die at the open breaker");
    assert_eq!(stats.dropped_disconnected, 0);
    assert_eq!(stats.delivery_failures(), 8);

    let explanations = b.explain_last(1024);
    let outcome = |o: MatchOutcome| explanations.iter().filter(|e| e.outcome == o).count() as u64;
    assert_eq!(outcome(MatchOutcome::Delivered), stats.notifications);
    assert_eq!(
        outcome(MatchOutcome::DeliveryDropped),
        stats.delivery_failures(),
        "every non-delivery is one of the split drop counters"
    );
    assert_eq!(rx.try_iter().count(), 2);
    b.shutdown();
}

/// The scrape server answers `/metrics`, `/healthz`, and `/explain` with
/// live broker state over plain HTTP.
#[test]
fn scrape_endpoints_serve_metrics_health_and_explanations() {
    use std::io::{Read, Write};
    let b = Arc::new(exact_broker(
        BrokerConfig::default()
            .with_workers(1)
            .with_explain_capacity(32)
            .with_flight_recorder(RecorderSettings::default()),
    ));
    let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    for i in 0..4 {
        b.publish(parse_event(&format!("{{k: v, i: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();

    let (mb, hb, eb) = (Arc::clone(&b), Arc::clone(&b), Arc::clone(&b));
    let (rb, bb, tb) = (Arc::clone(&b), Arc::clone(&b), Arc::clone(&b));
    let server = serve(
        "127.0.0.1:0",
        ScrapeHandlers::new(
            move || mb.metrics().render_prometheus(),
            move || {
                format!(
                    "{{\"status\":\"ok\",\"quarantined\":{}}}\n",
                    hb.stats().quarantined
                )
            },
            move || render_explanations_json(&eb.explain_last(32)),
        )
        .with_readyz(move || rb.readiness())
        .with_bundle(move || bb.latest_bundle_json().map(|bundle| (*bundle).clone()))
        .with_trigger(move || match tb.trigger_diagnostic("scrape test trigger") {
            Some(seq) => format!("{{\"triggered\":true,\"bundle_seq\":{seq}}}\n"),
            None => String::from("{\"triggered\":false}\n"),
        }),
    )
    .expect("bind on an ephemeral port");
    let addr = server.local_addr();
    let get = |path: &str| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };

    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(metrics.contains("text/plain"));
    assert!(metrics.contains("tep_published_total 4"));
    let health = get("/healthz");
    assert!(health.contains("\"status\":\"ok\""));
    assert!(health.contains("\"quarantined\":0"));
    let explain = get("/explain");
    assert!(explain.contains("application/json"));
    assert!(explain.contains("\"outcome\": \"delivered\""));
    let ready = get("/readyz");
    assert!(ready.starts_with("HTTP/1.1 200 OK"), "{ready}");
    assert!(ready.contains("\"ready\": true"), "{ready}");
    // No trigger has fired yet, so there is no bundle to serve …
    assert!(get("/debug/bundle").starts_with("HTTP/1.1 404"));
    // … until a manual POST freezes one.
    let post = |path: &str| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(
            s,
            "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    let triggered = post("/debug/trigger");
    assert!(triggered.starts_with("HTTP/1.1 200 OK"), "{triggered}");
    assert!(triggered.contains("\"triggered\":true"), "{triggered}");
    let bundle = get("/debug/bundle");
    assert!(bundle.starts_with("HTTP/1.1 200 OK"), "{bundle}");
    assert!(bundle.contains("\"kind\": \"manual\""), "{bundle}");
    assert!(get("/nope").starts_with("HTTP/1.1 404"));
    server.shutdown();
    // The handlers hold broker clones, so tear down via `close` (any
    // thread) rather than the by-value `shutdown`.
    b.close();
}

/// Regression test: concurrent `/metrics` scrapes racing the lazy window
/// refresh must push at most one frame per min-interval — the guard is a
/// mutex over the last-tick instant, so a scrape storm cannot flood the
/// window ring with near-identical frames.
#[test]
fn concurrent_lazy_ticks_push_at_most_one_frame_per_interval() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    let b = Arc::new(exact_broker(BrokerConfig::default().with_workers(1)));
    let interval = Duration::from_millis(200);
    let race = |broker: &Arc<Broker>| {
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let ticked = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let broker = Arc::clone(broker);
                let barrier = Arc::clone(&barrier);
                let ticked = Arc::clone(&ticked);
                std::thread::spawn(move || {
                    barrier.wait();
                    // Each racer scrapes several times, like a storm of
                    // overlapping Prometheus pollers.
                    for _ in 0..4 {
                        if broker.tick_window_if_stale(interval) {
                            ticked.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        ticked.load(Ordering::Relaxed)
    };

    assert_eq!(race(&b), 1, "first storm ticks exactly once");
    assert_eq!(race(&b), 0, "second storm inside the interval never ticks");
    std::thread::sleep(interval + Duration::from_millis(50));
    assert_eq!(race(&b), 1, "a stale window ticks exactly once more");
    b.close();
}

/// Satellite check: every installed scrape endpoint survives a storm of
/// concurrent scrapers racing live publish traffic — no handler panics,
/// no torn responses (each body matches its Content-Length), and every
/// JSON endpoint keeps returning parseable documents throughout.
#[test]
fn concurrent_scrapes_of_all_endpoints_under_publish_load() {
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Ground truth for the quality sampler: relevant iff `k` is `v`.
    struct KvOracle;
    impl tep::broker::QualityOracle for KvOracle {
        fn judge(&self, _s: &Subscription, e: &Event) -> Option<bool> {
            Some(e.value_of("k") == Some("v"))
        }
    }

    let b = Arc::new(
        exact_broker(
            BrokerConfig::default()
                .with_workers(2)
                .with_explain_capacity(32)
                .with_labeled_metrics(true)
                .with_overload_control(OverloadConfig::default())
                .with_flight_recorder(RecorderSettings::default())
                .with_cost_attribution(1),
        )
        .with_quality_sampling(4, Box::new(KvOracle)),
    );
    let (_, rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();

    let handlers = {
        let (mb, hb, eb) = (Arc::clone(&b), Arc::clone(&b), Arc::clone(&b));
        let (qb, tb, ob) = (Arc::clone(&b), Arc::clone(&b), Arc::clone(&b));
        let (cb, rb, db) = (Arc::clone(&b), Arc::clone(&b), Arc::clone(&b));
        ScrapeHandlers::new(
            move || mb.metrics().render_prometheus(),
            move || {
                format!(
                    "{{\"status\":\"ok\",\"processed\":{}}}\n",
                    hb.stats().processed
                )
            },
            move || render_explanations_json(&eb.explain_last(32)),
        )
        .with_quality(move || match qb.quality() {
            Some(report) => render_quality_json(&report),
            None => String::from("{\"status\":\"no quality sampling installed\"}\n"),
        })
        .with_top(move || tb.top_json(10))
        .with_overload(move || ob.overload_json())
        .with_costs(move || cb.costs_json())
        .with_readyz(move || rb.readiness())
        .with_bundle(move || db.latest_bundle_json().map(|bundle| (*bundle).clone()))
    };
    let server = serve("127.0.0.1:0", handlers).expect("bind on an ephemeral port");
    let addr = server.local_addr();

    // Publish load for the whole scrape storm: a background writer keeps
    // the cost tables, stage histograms, and windowed rates moving while
    // the scrapers read them.
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let (b, stop) = (Arc::clone(&b), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = if i.is_multiple_of(3) { "v" } else { "w" };
                b.publish(parse_event(&format!("{{k: {k}, i: n{i}}}")).unwrap())
                    .unwrap();
                i += 1;
                if i.is_multiple_of(64) {
                    let _ = b.flush();
                }
            }
            let _ = b.flush();
        })
    };

    const ENDPOINTS: [&str; 7] = [
        "/metrics",
        "/costs",
        "/quality",
        "/top",
        "/overload",
        "/readyz",
        "/debug/bundle",
    ];
    let scrapers: Vec<_> = (0..4)
        .map(|worker| {
            std::thread::spawn(move || {
                for round in 0..8 {
                    for path in ENDPOINTS {
                        let mut s = std::net::TcpStream::connect(addr).unwrap();
                        write!(
                            s,
                            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
                        )
                        .unwrap();
                        s.flush().unwrap();
                        let mut response = String::new();
                        s.read_to_string(&mut response).unwrap();
                        let tag = format!("worker {worker} round {round} {path}");
                        // /debug/bundle is 404 until a trigger fires; every
                        // other endpoint must answer 200 under load.
                        if path == "/debug/bundle" {
                            assert!(
                                response.starts_with("HTTP/1.1 200 OK")
                                    || response.starts_with("HTTP/1.1 404"),
                                "{tag}: {response}"
                            );
                        } else {
                            assert!(response.starts_with("HTTP/1.1 200 OK"), "{tag}: {response}");
                        }
                        // An untorn response carries exactly Content-Length
                        // body bytes after the blank line.
                        let length: usize = response
                            .lines()
                            .find_map(|l| l.strip_prefix("Content-Length: "))
                            .unwrap_or_else(|| panic!("{tag}: no Content-Length"))
                            .trim()
                            .parse()
                            .unwrap();
                        let body = response
                            .split_once("\r\n\r\n")
                            .unwrap_or_else(|| panic!("{tag}: no header/body split"))
                            .1;
                        assert_eq!(body.len(), length, "{tag}: torn body");
                        if path != "/metrics" {
                            serde_json::from_str::<serde_json::JsonValue>(body)
                                .unwrap_or_else(|e| panic!("{tag}: torn JSON {e:?} in {body}"));
                        }
                    }
                }
            })
        })
        .collect();
    for s in scrapers {
        s.join().expect("a scraper thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    publisher.join().expect("the publisher thread panicked");

    // The storm really ran against live state: traffic flowed and the
    // cost table attributed it.
    assert!(rx.try_iter().count() > 0, "publish load delivered");
    let costs = b.costs();
    assert!(costs.enabled && costs.samples > 0, "cost attribution ran");
    server.shutdown();
    b.close();
}
