//! Integration tests for the pipeline observability layer: stage latency
//! histograms, the metrics registry export, and the per-event trace ring.

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;

fn exact_broker(config: BrokerConfig) -> Broker {
    Broker::start(Arc::new(ExactMatcher::new()), config)
}

/// Under no-fault, no-overload conditions the stage histogram counts are
/// exact functions of the broker counters: one queue-wait sample per
/// processed event, one match sample per match test, one deliver sample
/// per notification.
#[test]
fn stage_latency_counts_reconcile_with_broker_counters() {
    let b = exact_broker(BrokerConfig::default().with_workers(2));
    let (_, rx) = b
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();
    let (_, _other) = b
        .subscribe(parse_subscription("{kind= other}").unwrap())
        .unwrap();
    for i in 0..500 {
        let kind = if i % 5 == 0 { "wanted" } else { "other" };
        b.publish(parse_event(&format!("{{kind: {kind}, seq: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();

    let stats = b.stats();
    let stages = b.stage_latencies();
    assert_eq!(stats.processed, 500);
    assert_eq!(
        stages.queue_wait.count(),
        stats.processed,
        "one queue-wait sample per processed event"
    );
    assert_eq!(
        stages.match_combined().count(),
        stats.match_tests,
        "one match sample per match test"
    );
    assert_eq!(
        stages.match_exact.count(),
        stats.match_tests,
        "exact-only subscriptions must all land in the exact bucket"
    );
    assert_eq!(stages.match_thematic.count(), 0);
    assert_eq!(stages.match_cached.count(), 0);
    assert_eq!(
        stages.deliver.count(),
        stats.notifications,
        "one deliver sample per admitted notification"
    );
    // `rx` sees only the "wanted" fifth; the rest went to `_other`.
    assert_eq!(rx.try_iter().count(), 100);
    assert_eq!(stats.notifications, 500);

    // Percentiles are monotone and bounded by the recorded max.
    for h in [&stages.queue_wait, &stages.match_exact, &stages.deliver] {
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
        assert!(h.sum() >= h.max(), "sum of samples is at least the max");
    }
    b.shutdown();
}

/// A thematic matcher's approximate subscriptions are classified by
/// cache temperature: the first pass over unseen event vocabulary pays
/// semantic-cache misses (thematic-cold), repeats are served warm.
#[test]
fn thematic_match_tests_split_by_cache_temperature() {
    let corpus = Corpus::generate(&CorpusConfig::small());
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    let matcher = ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm), MatcherConfig::top1());
    // A single worker keeps the miss-delta sampling free of concurrent
    // misses from other match tests.
    let b = Broker::start(Arc::new(matcher), BrokerConfig::default().with_workers(1));
    let (_, _rx) = b
        .subscribe(
            parse_subscription("({energy policy}, {type~= increased energy usage event~})")
                .unwrap(),
        )
        .unwrap();
    let event = parse_event(
        "({energy policy}, {type: increased energy consumption event, device: computer})",
    )
    .unwrap();
    b.publish(event.clone()).unwrap();
    b.flush().unwrap();
    let cold = b.stage_latencies();
    assert_eq!(
        cold.match_exact.count(),
        0,
        "an approximate subscription never lands in the exact bucket"
    );
    assert!(
        cold.match_thematic.count() >= 1,
        "first sight of the event vocabulary must pay a cache miss"
    );

    for _ in 0..5 {
        b.publish(event.clone()).unwrap();
    }
    b.flush().unwrap();
    let warm = b.stage_latencies();
    let stats = b.stats();
    assert_eq!(warm.match_combined().count(), stats.match_tests);
    assert!(
        warm.match_cached.count() >= 1,
        "repeat events must be served from warm caches"
    );
    b.shutdown();
}

/// The Prometheus text export carries every broker counter plus the
/// cumulative stage histograms; the JSON export parses and reports the
/// same counts.
#[test]
fn metrics_export_prometheus_and_json() {
    let b = exact_broker(BrokerConfig::default().with_workers(1));
    let (_, rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    for i in 0..8 {
        b.publish(parse_event(&format!("{{k: v, i: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();
    drop(rx);

    let text = b.metrics().render_prometheus();
    assert!(text.contains("# TYPE tep_published_total counter"));
    assert!(text.contains("tep_published_total 8"));
    assert!(text.contains("tep_match_tests_total 8"));
    assert!(text.contains("tep_notifications_total 8"));
    assert!(text.contains("# TYPE tep_live_workers gauge"));
    assert!(text.contains("tep_live_workers 1"));
    assert!(text.contains("# TYPE tep_stage_queue_wait_seconds histogram"));
    assert!(text.contains("tep_stage_queue_wait_seconds_bucket{le=\"+Inf\"} 8"));
    assert!(text.contains("tep_stage_queue_wait_seconds_count 8"));
    assert!(text.contains("tep_stage_queue_wait_seconds_sum "));
    assert!(text.contains("tep_stage_match_exact_seconds_count 8"));
    assert!(text.contains("tep_stage_deliver_seconds_count 8"));

    let json = b.metrics().render_json();
    assert!(json.contains("\"tep_published_total\": 8"));
    assert!(json.contains("\"tep_stage_queue_wait_seconds\": {\"count\": 8,"));
    assert!(json.contains("\"p99_ns\""));
    // Braces balance (cheap well-formedness check without a JSON parser).
    assert_eq!(
        json.matches(['{', '[']).count(),
        json.matches(['}', ']']).count()
    );
    b.shutdown();
}

/// With theme routing and tracing enabled, a routed event's trace shows
/// the candidate set after the skip, and the skip itself.
#[test]
fn trace_ring_records_routing_skips() {
    let config = BrokerConfig::default()
        .with_workers(1)
        .with_routing_policy(RoutingPolicy::ThemeOverlap)
        .with_trace_capacity(8);
    let b = exact_broker(config);
    let (_, power_rx) = b
        .subscribe(parse_subscription("({power}, {k= v})").unwrap())
        .unwrap();
    let (_, _transport_rx) = b
        .subscribe(parse_subscription("({transport}, {k= v})").unwrap())
        .unwrap();

    b.publish(parse_event("({power}, {k: v})").unwrap())
        .unwrap();
    b.flush().unwrap();
    let traces = b.traces();
    assert_eq!(traces.len(), 1);
    let t = &traces[0];
    assert_eq!(t.seq, 0);
    assert_eq!(t.candidates, 1, "only the power subscription is tested");
    assert_eq!(
        t.routing_skipped, 1,
        "the transport subscription is skipped"
    );
    assert_eq!(t.match_tests, 1);
    assert_eq!(t.notifications, 1);
    assert!(!t.quarantined);
    assert_eq!(power_rx.try_iter().count(), 1);

    // The ring is bounded: flooding it keeps only the newest entries.
    for i in 0..20 {
        b.publish(parse_event(&format!("({{power}}, {{k: v, i: n{i}}})")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();
    let traces = b.traces();
    assert_eq!(traces.len(), 8, "ring truncates to its capacity");
    assert_eq!(
        traces.last().unwrap().seq,
        20,
        "the newest event's trace survives"
    );
    b.shutdown();
}

/// Tracing is opt-in: with the default capacity of 0 the ring stays
/// empty no matter how much traffic flows.
#[test]
fn tracing_disabled_by_default() {
    let b = exact_broker(BrokerConfig::default().with_workers(1));
    let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
    for i in 0..16 {
        b.publish(parse_event(&format!("{{k: v, i: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush().unwrap();
    assert!(b.traces().is_empty());
    // The stage histograms still record.
    assert_eq!(b.stage_latencies().queue_wait.count(), 16);
    b.shutdown();
}

/// A quarantined event's trace is flagged, with its retried match tests
/// counted.
#[test]
fn trace_flags_quarantined_events() {
    /// Panics on every `k: boom` event.
    #[derive(Debug)]
    struct BoomMatcher;
    impl Matcher for BoomMatcher {
        fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
            if event.value_of("k") == Some("boom") {
                panic!("injected observability fault");
            }
            ExactMatcher::new().match_event(subscription, event)
        }
    }
    // Silence the injected panic in test output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected observability fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let config = BrokerConfig::default()
        .with_workers(1)
        .with_max_match_attempts(2)
        .with_trace_capacity(4);
    let b = Broker::start(Arc::new(BoomMatcher), config);
    let (_, _rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
    b.publish(parse_event("{k: boom}").unwrap()).unwrap();
    b.flush_timeout(Duration::from_secs(10)).unwrap();
    let traces = b.traces();
    assert_eq!(traces.len(), 1);
    assert!(traces[0].quarantined);
    assert_eq!(traces[0].match_tests, 2, "both retry attempts are counted");
    assert_eq!(traces[0].notifications, 0);
    let _ = std::panic::take_hook();
    b.shutdown();
}
