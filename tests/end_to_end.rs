//! End-to-end integration across the whole stack: thesaurus → corpus →
//! index → distributional space → PVSM → matcher, on the paper's own
//! examples.

use std::sync::Arc;
use tep::prelude::*;

fn pvsm() -> Arc<ParametricVectorSpace> {
    let corpus = Corpus::generate(&CorpusConfig::small().with_num_docs(900));
    Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )))
}

#[test]
fn paper_section3_example_matches_with_correct_mapping() {
    let matcher = ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm()), MatcherConfig::top1());
    let event = parse_event(
        "({energy, appliances, building}, \
         {type: increased energy consumption event, measurement unit: kilowatt hour, \
          device: computer, office: room 112})",
    )
    .unwrap();
    let subscription = parse_subscription(
        "({power, computers}, \
         {type= increased energy usage event~, device~= laptop~, office= room 112})",
    )
    .unwrap();
    let result = matcher.match_event(&subscription, &event);
    let best = result.best().expect("the paper example must match");
    // σ* from §3: type↔type, device↔device, office↔office.
    assert_eq!(best.tuple_of(0), Some(0));
    assert_eq!(best.tuple_of(1), Some(2));
    assert_eq!(best.tuple_of(2), Some(3));
    assert!(best.score() > 0.0);
}

#[test]
fn section1_parking_terms_are_interchangeable() {
    // §1: a consumer using 'garage spot occupied' must be able to handle
    // a 'parking space occupied' event under the approximate matcher.
    let matcher = ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm()), MatcherConfig::top1());
    let event =
        parse_event("({land transport, parking policy}, {type: parking space occupied event})")
            .unwrap();
    let subscription = parse_subscription(
        "({land transport, parking policy}, {type~= garage spot occupied event~})",
    )
    .unwrap();
    let hit = matcher.match_event(&subscription, &event).score();

    let unrelated =
        parse_event("({land transport, parking policy}, {type: ozone reading event})").unwrap();
    let miss = matcher.match_event(&subscription, &unrelated).score();
    assert!(
        hit > miss,
        "semantically equivalent type ({hit}) must outrank an unrelated one ({miss})"
    );
}

#[test]
fn thematic_projection_shrinks_vectors_and_speeds_distance() {
    let pvsm = pvsm();
    let energy = Theme::new(["energy policy", "building energy"]);
    let full = pvsm.project("energy consumption", &Theme::empty());
    let projected = pvsm.project("energy consumption", &energy);
    assert!(
        projected.nnz() < full.nnz(),
        "projection must filter the space: {} !< {}",
        projected.nnz(),
        full.nnz()
    );
}

#[test]
fn exact_predicates_veto_across_the_stack() {
    let matcher = ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm()), MatcherConfig::top1());
    let event =
        parse_event("{type: increased energy consumption event, office: room 204}").unwrap();
    let subscription =
        parse_subscription("{type~= increased energy usage event~, office= room 112}").unwrap();
    assert!(matcher.match_event(&subscription, &event).is_empty());
}

#[test]
fn top_k_mappings_are_ranked_and_normalized() {
    let matcher =
        ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm()), MatcherConfig::top_k(4));
    let event = parse_event(
        "{type: increased energy consumption event, device: computer, \
         machine: refrigerator, office: room 112}",
    )
    .unwrap();
    let subscription = parse_subscription("{device~= laptop~}").unwrap();
    let result = matcher.match_event(&subscription, &event);
    assert!(result.mappings().len() > 1);
    for pair in result.mappings().windows(2) {
        assert!(pair[0].score() >= pair[1].score());
    }
    let total: f64 = result.mappings().iter().map(|m| m.probability()).sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn relational_operators_work_through_the_full_stack() {
    // §3.4 keeps numeric operators out of the paper's language "for the
    // sake of discourse simplicity"; this implementation supports them:
    // an approximate type with an exact numeric bound.
    let matcher = ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm()), MatcherConfig::top1());
    let subscription = parse_subscription(
        "({weather monitoring, air quality},          {type~= temperature reading event~, value > 30})",
    )
    .unwrap();
    let hot = parse_event(
        "({weather monitoring}, {type: ground temperature reading event, value: 34.5})",
    )
    .unwrap();
    let cold =
        parse_event("({weather monitoring}, {type: ground temperature reading event, value: 12})")
            .unwrap();
    let hot_score = matcher.match_event(&subscription, &hot).score();
    let cold_score = matcher.match_event(&subscription, &cold).score();
    assert!(hot_score > 0.0, "34.5 > 30 must pass the numeric bound");
    assert_eq!(cold_score, 0.0, "12 > 30 must veto the mapping");
}

#[test]
fn full_stack_is_deterministic() {
    let a = pvsm();
    let b = pvsm();
    let theme = Theme::new(["energy policy"]);
    let ra = a.relatedness("energy consumption", &theme, "electricity usage", &theme);
    let rb = b.relatedness("energy consumption", &theme, "electricity usage", &theme);
    assert_eq!(ra, rb);
}
