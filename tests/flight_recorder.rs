//! Integration tests for the flight recorder: diagnostic bundles frozen
//! by chaos (a worker panic, a forced `Critical` load state) and by the
//! manual trigger, the bundle's JSON schema, the bounded on-disk spool,
//! and the liveness/readiness split.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tep::prelude::*;

use serde_json::JsonValue;

fn get<'a>(entries: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A recorder ticking fast enough that real frames land between publish
/// and trigger even in a short test.
fn recorder_settings() -> RecorderSettings {
    RecorderSettings {
        tick_ms: 1,
        ..RecorderSettings::default()
    }
}

fn recorder_broker(config: BrokerConfig) -> Broker {
    Broker::start(
        Arc::new(ExactMatcher::new()),
        config.with_flight_recorder(recorder_settings()),
    )
}

/// Replaces the default panic hook with one that stays quiet about
/// panics whose message contains "injected" — the chaos tests below
/// murder workers on purpose and should not spray backtraces.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("injected"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

struct BoomMatcher;

impl Matcher for BoomMatcher {
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
        if event.value_of("k") == Some("boom") {
            panic!("injected recorder fault");
        }
        ExactMatcher::new().match_event(subscription, event)
    }
}

/// Parses a bundle and asserts the full top-level schema: a numeric
/// `bundle_seq`, a `cause` object naming the trigger, a non-empty
/// `frames` array whose frames carry the per-frame sections, and a
/// `context` object with the config fingerprint. Returns the cause
/// detail for kind-specific checks.
fn assert_bundle_schema(bundle: &str, expected_kind: &str) -> String {
    let parsed: JsonValue = serde_json::from_str(bundle).expect("bundle is valid JSON");
    let entries = parsed.as_map().expect("bundle is a JSON object");
    get(entries, "bundle_seq")
        .and_then(JsonValue::as_u64)
        .expect("numeric bundle_seq");
    let cause = get(entries, "cause")
        .and_then(JsonValue::as_map)
        .expect("cause object");
    assert_eq!(
        get(cause, "kind").and_then(JsonValue::as_str),
        Some(expected_kind),
        "trigger kind"
    );
    get(cause, "at_ms")
        .and_then(JsonValue::as_f64)
        .expect("cause timestamp");
    let frames = get(entries, "frames")
        .and_then(JsonValue::as_seq)
        .expect("frames array");
    assert!(
        !frames.is_empty(),
        "a warmed recorder always has pre-trigger frames"
    );
    for frame in frames {
        let frame = frame.as_map().expect("frame object");
        get(frame, "seq")
            .and_then(JsonValue::as_u64)
            .expect("frame seq");
        get(frame, "at_ms")
            .and_then(JsonValue::as_f64)
            .expect("frame at_ms");
        let counters = get(frame, "counters")
            .and_then(JsonValue::as_map)
            .expect("frame counters");
        assert!(get(counters, "published").is_some());
        assert!(get(counters, "worker_panics").is_some());
        let gauges = get(frame, "gauges")
            .and_then(JsonValue::as_map)
            .expect("frame gauges");
        assert!(get(gauges, "live_workers").is_some());
        let stages = get(frame, "stages")
            .and_then(JsonValue::as_seq)
            .expect("frame stages");
        assert!(!stages.is_empty(), "stage snapshots present");
    }
    let context = get(entries, "context")
        .and_then(JsonValue::as_map)
        .expect("context object");
    get(context, "config_fingerprint")
        .and_then(JsonValue::as_str)
        .expect("config fingerprint");
    get(context, "stats")
        .and_then(JsonValue::as_map)
        .expect("stats snapshot in context");
    get(cause, "detail")
        .and_then(JsonValue::as_str)
        .expect("cause detail")
        .to_string()
}

/// Polls for the next bundle: triggers fire on supervisor/worker threads,
/// so `flush` alone does not prove assembly finished.
fn wait_for_bundle(b: &Broker) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(bundle) = b.latest_bundle_json() {
            return (*bundle).clone();
        }
        assert!(Instant::now() < deadline, "no bundle within the deadline");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn manual_trigger_freezes_a_schema_valid_bundle() {
    let b = recorder_broker(BrokerConfig::default().with_workers(2));
    let (_, rx) = b
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();
    for i in 0..64 {
        b.publish(parse_event(&format!("{{kind: wanted, n: v{i}}}")).unwrap())
            .unwrap();
    }
    b.flush_timeout(Duration::from_secs(30)).unwrap();
    let seq = b
        .trigger_diagnostic("operator drill")
        .expect("manual trigger produces a bundle");
    assert_eq!(b.diagnostic_bundles(), 1);
    let bundle = b.latest_bundle_json().expect("bundle retained in memory");
    let detail = assert_bundle_schema(&bundle, "manual");
    assert!(detail.contains("operator drill"), "detail: {detail}");
    // The bundle must carry the traffic the frames observed.
    assert!(bundle.contains("\"published\""));
    let parsed: JsonValue = serde_json::from_str(&bundle).unwrap();
    let entries = parsed.as_map().unwrap();
    assert_eq!(
        get(entries, "bundle_seq").and_then(JsonValue::as_u64),
        Some(seq)
    );
    while rx.try_recv().is_ok() {}
    b.shutdown();
}

#[test]
fn worker_panic_freezes_a_bundle_naming_the_cause() {
    silence_injected_panics();
    let config = BrokerConfig::default()
        .with_workers(1)
        .with_panic_isolation(false)
        .with_max_match_attempts(2)
        .with_flight_recorder(recorder_settings());
    let b = Broker::start(Arc::new(BoomMatcher), config);
    let (_, rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
    for i in 0..10 {
        let k = if i == 5 { "boom" } else { "ok" };
        b.publish(parse_event(&format!("{{k: {k}, seq: n{i}}}")).unwrap())
            .unwrap();
    }
    b.flush_timeout(Duration::from_secs(30)).unwrap();
    let bundle = wait_for_bundle(&b);
    let detail = assert_bundle_schema(&bundle, "worker_panic");
    assert!(detail.contains("worker"), "detail: {detail}");
    assert!(b.stats().worker_panics >= 1);
    while rx.try_recv().is_ok() {}
    b.shutdown();
}

#[test]
fn forced_critical_load_state_fires_the_drill_trigger() {
    let b = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default()
            .with_workers(1)
            .with_overload_control(OverloadConfig::default())
            .with_flight_recorder(recorder_settings()),
    );
    assert!(
        b.latest_bundle_json().is_none(),
        "no bundle before any trigger"
    );
    b.force_load_state(Some(LoadState::Critical));
    let bundle = wait_for_bundle(&b);
    let detail = assert_bundle_schema(&bundle, "load_critical");
    assert!(detail.contains("critical"), "detail: {detail}");
    b.force_load_state(None);
    b.shutdown();
}

#[test]
fn trigger_cooldown_suppresses_a_bundle_storm() {
    let b = recorder_broker(BrokerConfig::default().with_workers(1));
    assert!(b.trigger_diagnostic("first").is_some());
    // Default cooldown is 5 s per kind; an immediate second manual
    // trigger must be swallowed.
    assert!(b.trigger_diagnostic("second").is_none());
    assert_eq!(b.diagnostic_bundles(), 1);
    b.shutdown();
}

#[test]
fn spool_keeps_only_the_newest_bundles() {
    let dir = std::env::temp_dir().join(format!("tep-recorder-itest-{}-spool", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let b = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default()
            .with_workers(1)
            .with_flight_recorder(RecorderSettings {
                tick_ms: 1,
                spool_dir: Some(dir.to_string_lossy().into_owned()),
                spool_capacity: 2,
                // The shortest cooldown normalization allows; the test
                // sleeps past it between triggers.
                trigger_cooldown_ms: 1,
                ..RecorderSettings::default()
            }),
    );
    for i in 0..4 {
        std::thread::sleep(Duration::from_millis(5));
        b.trigger_diagnostic(&format!("drill {i}"))
            .expect("cooldown elapsed");
    }
    assert_eq!(b.diagnostic_bundles(), 4);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("spool dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec!["tep-diag-2.json".to_string(), "tep-diag-3.json".to_string()],
        "oldest bundles evicted"
    );
    // Every surviving spool file is itself a complete, parseable bundle.
    for name in &names {
        let doc = std::fs::read_to_string(dir.join(name)).unwrap();
        assert_bundle_schema(&doc, "manual");
    }
    b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readiness_splits_from_liveness() {
    let b = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default()
            .with_workers(1)
            .with_overload_control(OverloadConfig::default()),
    );
    let (ready, body) = b.readiness();
    assert!(ready, "fresh broker is ready: {body}");
    let parsed: JsonValue = serde_json::from_str(&body).expect("readiness body is JSON");
    let entries = parsed.as_map().unwrap();
    assert_eq!(
        get(entries, "ready").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert!(get(entries, "load_state")
        .and_then(JsonValue::as_str)
        .is_some());
    assert!(get(entries, "open_breakers")
        .and_then(JsonValue::as_u64)
        .is_some());
    assert!(get(entries, "quarantined")
        .and_then(JsonValue::as_u64)
        .is_some());
    // Overloaded-or-worse load states flip readiness while the broker
    // stays alive (liveness would still answer).
    b.force_load_state(Some(LoadState::Critical));
    let (ready, body) = b.readiness();
    assert!(!ready, "critical broker is not ready: {body}");
    b.force_load_state(None);
    let (ready, _) = b.readiness();
    assert!(ready, "released broker is ready again");
    b.close();
    let (ready, body) = b.readiness();
    assert!(!ready, "closed broker is not ready: {body}");
    b.shutdown();
}
