//! Integration tests of the Fig. 6 evaluation pipeline at tiny scale:
//! every stage feeds the next and the end-to-end invariants hold.

use tep_eval::{
    run_sub_experiment, EvalConfig, MatcherStack, ThemeCombination, ThemeSampler, Workload,
};
use tep_matcher::Matcher as _;

fn setup() -> (MatcherStack, Workload) {
    let cfg = EvalConfig::tiny();
    (MatcherStack::build(&cfg), Workload::generate(&cfg))
}

#[test]
fn relevant_seed_events_rank_first_for_their_subscription() {
    let (stack, workload) = setup();
    let matcher = stack.non_thematic();
    // Each approximate subscription, matched against its own origin seed
    // event (which is in the event set), must score 1.0 — all predicates
    // were copied verbatim from that seed.
    for (s, sub) in workload.subscriptions().iter().enumerate() {
        let seed_event = &workload.events()[s % workload.seeds().len()];
        let score = matcher.match_event(sub, seed_event).score();
        assert!(
            (score - 1.0).abs() < 1e-9,
            "subscription {s} vs its seed: score {score}"
        );
    }
}

#[test]
fn expanded_relevant_events_still_score_positive() {
    let (stack, workload) = setup();
    let matcher = stack.non_thematic();
    let mut checked = 0;
    let mut zero_scored = 0;
    for s in 0..workload.subscriptions().len() {
        let sub = &workload.subscriptions()[s];
        for e in workload.ground_truth().relevant_events(s) {
            let score = matcher.match_event(sub, &workload.events()[e]).score();
            if score <= 0.0 {
                zero_scored += 1;
            }
            checked += 1;
        }
    }
    assert!(checked > workload.subscriptions().len());
    // Expansion may replace *every* predicate term of an event with a
    // related (not synonymous) term, pushing a still-relevant event below
    // the matcher's similarity floor — rare, but possible for any RNG
    // stream. Relevance must survive expansion in the overwhelming
    // majority of cases, not unconditionally.
    assert!(
        zero_scored * 20 <= checked,
        "{zero_scored}/{checked} relevant events scored 0"
    );
}

#[test]
fn thematic_beats_baseline_on_recommended_themes() {
    // §5.3.3's recommended operating point (few event tags contained in a
    // larger subscription theme) must outperform or match the
    // non-thematic baseline on both metrics.
    let (stack, workload) = setup();
    let no_theme = ThemeCombination {
        event_tags: vec![],
        subscription_tags: vec![],
    };
    let baseline = run_sub_experiment(&stack.non_thematic(), &workload, &no_theme);

    let mut sampler = ThemeSampler::new(stack.thesaurus(), workload.config().seed);
    let mut best_f1 = 0.0f64;
    let mut best_tput = 0.0f64;
    for _ in 0..3 {
        let combo = sampler.sample(6, 12);
        let r = run_sub_experiment(&stack.thematic(), &workload, &combo);
        best_f1 = best_f1.max(r.f1());
        best_tput = best_tput.max(r.throughput);
        stack.clear_caches();
    }
    assert!(
        best_f1 >= baseline.f1() - 0.02,
        "thematic best F1 {best_f1} far below baseline {}",
        baseline.f1()
    );
    // At this tiny corpus scale the full-space vectors are small, so the
    // baseline is cheap and projection overhead is not amortized; the
    // paper's throughput advantage is asserted at realistic scale by the
    // repro harness. Here we only require the same order of magnitude.
    assert!(
        best_tput > 0.25 * baseline.throughput,
        "thematic throughput {best_tput} collapsed vs baseline {}",
        baseline.throughput
    );
}

#[test]
fn theme_sampler_containment_holds_across_the_grid() {
    let (stack, workload) = setup();
    let mut sampler = ThemeSampler::new(stack.thesaurus(), workload.config().seed);
    for es in [1usize, 5, 17, 30] {
        for ss in [1usize, 5, 17, 30] {
            let combo = sampler.sample(es, ss);
            assert_eq!(combo.event_tags.len(), es);
            assert_eq!(combo.subscription_tags.len(), ss);
            assert!(
                combo.containment_holds(),
                "containment violated at ({es},{ss})"
            );
        }
    }
}

#[test]
fn throughput_measurement_is_positive_and_finite() {
    let (stack, workload) = setup();
    let combo = ThemeCombination {
        event_tags: vec!["energy policy".into()],
        subscription_tags: vec!["energy policy".into()],
    };
    let r = run_sub_experiment(&stack.thematic(), &workload, &combo);
    assert!(r.throughput.is_finite() && r.throughput > 0.0);
    assert!(r.elapsed.as_nanos() > 0);
    assert_eq!(r.num_events, workload.events().len());
}

#[test]
fn exact_matching_of_exact_subscriptions_has_perfect_precision() {
    // Drive run_sub_experiment with the exact matcher against exact
    // subscriptions — every retrieved event is ground-truth relevant, so
    // precision is 1 at every achieved recall level.
    let (stack, workload) = setup();
    let exact_subs: Vec<_> = workload.exact_subscriptions().to_vec();
    let gt = tep_eval::GroundTruth::compute(workload.seeds(), &exact_subs, workload.provenance());
    let w2 = workload.with_subscriptions(exact_subs.clone(), exact_subs, gt);
    let combo = ThemeCombination {
        event_tags: vec![],
        subscription_tags: vec![],
    };
    let r = run_sub_experiment(&stack.exact(), &w2, &combo);
    // The exact matcher's precision is 1.0 at every achieved recall
    // level, so max F1 is strictly positive and its precision at recall
    // 0.1 should be 1.0 unless nothing at all was retrieved.
    assert!(r.effectiveness.precision_at[1] > 0.99);
    assert!(r.f1() > 0.0);
}
