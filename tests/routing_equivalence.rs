//! Property test for theme-indexed routing: under
//! `RoutingPolicy::ThemeOverlap`, dispatch through the broker's routing
//! table must deliver exactly the notification set of brute-force
//! dispatch applying the same theme-overlap gate — routing may skip work,
//! never a match. Theme-less subscriptions opt out of routing and must
//! stay broadcast.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use tep::prelude::*;

const TAG_POOL: [&str; 4] = ["power", "transport", "water", "networking"];

/// A random subset of the tag pool (possibly empty = theme-less side).
fn tag_set() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(0usize..TAG_POOL.len(), 0..=3)
        .prop_map(|s| s.into_iter().map(|i| TAG_POOL[i].to_string()).collect())
}

proptest! {
    #[test]
    fn theme_routing_equals_brute_force_dispatch(
        sub_tags in proptest::collection::vec(tag_set(), 1..6),
        event_tags in proptest::collection::vec(tag_set(), 1..8),
    ) {
        // Every subscription's predicate matches every event, so which
        // notifications arrive is decided purely by the routing gate.
        let broker = Broker::start(
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default()
                .with_workers(1)
                .with_routing_policy(RoutingPolicy::ThemeOverlap),
        );
        let mut subs = Vec::new();
        for tags in &sub_tags {
            let s = Subscription::builder()
                .theme_tags(tags.iter().map(String::as_str))
                .predicate_exact("k", "v")
                .build()
                .unwrap();
            let (id, rx) = broker.subscribe(s.clone()).unwrap();
            subs.push((id, s, rx));
        }
        let mut events = Vec::new();
        for (i, tags) in event_tags.iter().enumerate() {
            let e = Event::builder()
                .theme_tags(tags.iter().map(String::as_str))
                .tuple("k", "v")
                .tuple("seq", &format!("n{i}"))
                .build()
                .unwrap();
            broker.publish(e.clone()).unwrap();
            events.push(e);
        }
        broker.flush().unwrap();

        // Brute force over all pairs: theme-less subscriptions receive
        // everything (broadcast opt-out); themed ones need a shared tag.
        let mut expected = BTreeSet::new();
        for (id, s, _) in &subs {
            for (i, e) in events.iter().enumerate() {
                if s.theme_tags().is_empty() || s.shares_theme_with(e) {
                    expected.insert((id.0, i));
                }
            }
        }

        let mut delivered = BTreeSet::new();
        for (id, _, rx) in &subs {
            while let Ok(n) = rx.try_recv() {
                let seq = n.event.value_of("seq").expect("seq tuple");
                let i: usize = seq[1..].parse().expect("seq number");
                delivered.insert((id.0, i));
            }
        }
        prop_assert_eq!(
            &delivered,
            &expected,
            "routed dispatch must deliver exactly the brute-force gate's set"
        );
        broker.shutdown();
    }
}
