//! Property test for theme-indexed routing: under
//! `RoutingPolicy::ThemeOverlap`, dispatch through the broker's routing
//! table must deliver exactly the notification set of brute-force
//! dispatch applying the same theme-overlap gate — routing may skip work,
//! never a match. Theme-less subscriptions opt out of routing and must
//! stay broadcast.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use tep::prelude::*;

const TAG_POOL: [&str; 4] = ["power", "transport", "water", "networking"];

/// The attribute/value pools for the aggregation property: deliberately
/// tiny so random populations are full of duplicate predicate sets,
/// permuted orders, and exact-subset (covering) pairs. Attributes are
/// unique per subscription/event (the builders enforce it); a value
/// mismatch on a shared attribute is a miss.
const ATTR_POOL: [&str; 3] = ["a", "b", "c"];
const VALUE_POOL: [&str; 2] = ["x", "y"];

/// A random subset of the tag pool (possibly empty = theme-less side).
fn tag_set() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(0usize..TAG_POOL.len(), 0..=3)
        .prop_map(|s| s.into_iter().map(|i| TAG_POOL[i].to_string()).collect())
}

/// A random non-empty attribute→value assignment over the pools, in
/// either ascending or descending attribute order so duplicate sets also
/// exercise the per-member predicate-order permutations.
fn pair_set(min: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    (
        proptest::collection::btree_set(0usize..ATTR_POOL.len(), min..=3),
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(attrs, value_bits, rev)| {
            let mut v: Vec<(usize, usize)> = attrs
                .into_iter()
                .map(|a| (a, usize::from(value_bits >> a & 1) % VALUE_POOL.len()))
                .collect();
            if rev {
                v.reverse();
            }
            v
        })
}

proptest! {
    #[test]
    fn theme_routing_equals_brute_force_dispatch(
        sub_tags in proptest::collection::vec(tag_set(), 1..6),
        event_tags in proptest::collection::vec(tag_set(), 1..8),
    ) {
        // Every subscription's predicate matches every event, so which
        // notifications arrive is decided purely by the routing gate.
        let broker = Broker::start(
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default()
                .with_workers(1)
                .with_routing_policy(RoutingPolicy::ThemeOverlap),
        );
        let mut subs = Vec::new();
        for tags in &sub_tags {
            let s = Subscription::builder()
                .theme_tags(tags.iter().map(String::as_str))
                .predicate_exact("k", "v")
                .build()
                .unwrap();
            let (id, rx) = broker.subscribe(s.clone()).unwrap();
            subs.push((id, s, rx));
        }
        let mut events = Vec::new();
        for (i, tags) in event_tags.iter().enumerate() {
            let e = Event::builder()
                .theme_tags(tags.iter().map(String::as_str))
                .tuple("k", "v")
                .tuple("seq", &format!("n{i}"))
                .build()
                .unwrap();
            broker.publish(e.clone()).unwrap();
            events.push(e);
        }
        broker.flush().unwrap();

        // Brute force over all pairs: theme-less subscriptions receive
        // everything (broadcast opt-out); themed ones need a shared tag.
        let mut expected = BTreeSet::new();
        for (id, s, _) in &subs {
            for (i, e) in events.iter().enumerate() {
                if s.theme_tags().is_empty() || s.shares_theme_with(e) {
                    expected.insert((id.0, i));
                }
            }
        }

        let mut delivered = BTreeSet::new();
        for (id, _, rx) in &subs {
            while let Ok(n) = rx.try_recv() {
                let seq = n.event.value_of("seq").expect("seq tuple");
                let i: usize = seq[1..].parse().expect("seq number");
                delivered.insert((id.0, i));
            }
        }
        prop_assert_eq!(
            &delivered,
            &expected,
            "routed dispatch must deliver exactly the brute-force gate's set"
        );
        broker.shutdown();
    }

    /// The subscription index aggregates duplicate subscriptions onto
    /// shared entries and prunes/short-circuits through covering edges;
    /// none of that may change *what* is delivered. This drives a
    /// randomized population over a deliberately tiny predicate pool —
    /// so duplicate subscriptions, permuted predicate orders, and
    /// exact-subset (covering) pairs all occur constantly — and checks
    /// index dispatch against brute force over all pairs under both
    /// routing policies.
    #[test]
    fn index_dispatch_equals_brute_force_over_duplicates_and_subsets(
        sub_specs in proptest::collection::vec((tag_set(), pair_set(1)), 1..12),
        event_specs in proptest::collection::vec((tag_set(), pair_set(0)), 1..8),
    ) {
        for policy in [RoutingPolicy::Broadcast, RoutingPolicy::ThemeOverlap] {
            let broker = Broker::start(
                Arc::new(ExactMatcher::new()),
                BrokerConfig::default()
                    .with_workers(1)
                    .with_routing_policy(policy),
            );
            let mut subs = Vec::new();
            for (tags, preds) in &sub_specs {
                let mut b = Subscription::builder().theme_tags(tags.iter().map(String::as_str));
                for &(a, v) in preds {
                    b = b.predicate_exact(ATTR_POOL[a], VALUE_POOL[v]);
                }
                let s = b.build().unwrap();
                let (id, rx) = broker.subscribe(s.clone()).unwrap();
                subs.push((id, s, rx));
            }
            let mut events = Vec::new();
            for (i, (tags, tuples)) in event_specs.iter().enumerate() {
                let mut b = Event::builder()
                    .theme_tags(tags.iter().map(String::as_str))
                    .tuple("seq", &format!("n{i}"));
                for &(a, v) in tuples {
                    b = b.tuple(ATTR_POOL[a], VALUE_POOL[v]);
                }
                let e = b.build().unwrap();
                broker.publish(e.clone()).unwrap();
                events.push(e);
            }
            broker.flush().unwrap();

            // Brute force over all pairs: the routing gate (policy-
            // dependent), then exact conjunctive matching — every
            // predicate pair present among the event tuples.
            let mut expected = BTreeSet::new();
            for (id, s, _) in &subs {
                for (i, e) in events.iter().enumerate() {
                    let routed = match policy {
                        RoutingPolicy::Broadcast => true,
                        RoutingPolicy::ThemeOverlap => {
                            s.theme_tags().is_empty() || s.shares_theme_with(e)
                        }
                    };
                    let matched = s.predicates().iter().all(|p| {
                        e.tuples()
                            .iter()
                            .any(|t| t.attribute() == p.attribute() && t.value() == p.value())
                    });
                    if routed && matched {
                        expected.insert((id.0, i));
                    }
                }
            }

            let mut delivered = BTreeSet::new();
            for (id, _, rx) in &subs {
                while let Ok(n) = rx.try_recv() {
                    let seq = n.event.value_of("seq").expect("seq tuple");
                    let i: usize = seq[1..].parse().expect("seq number");
                    // Every delivered result indexes predicates in *this*
                    // subscriber's declaration order: with exact matching
                    // each correspondence's predicate pair must be among
                    // the event tuples, whatever entry representative
                    // actually ran the test.
                    let sub = &subs.iter().find(|(i2, _, _)| i2 == id).unwrap().1;
                    for m in n.result.mappings() {
                        for c in m.correspondences() {
                            let p = &sub.predicates()[c.predicate];
                            prop_assert!(
                                events[i].tuples().iter().any(|t| {
                                    t.attribute() == p.attribute() && t.value() == p.value()
                                }),
                                "correspondence points at a predicate the event cannot satisfy"
                            );
                        }
                    }
                    delivered.insert((id.0, i));
                }
            }
            prop_assert_eq!(
                &delivered,
                &expected,
                "index dispatch under {:?} must deliver exactly the brute-force set",
                policy
            );

            // Aggregation bookkeeping: hash-consing never reports more
            // entries (distinct predicate-set × theme combinations) or
            // distinct predicate sets than registered subscriptions, and
            // splitting a predicate set across themes only adds entries.
            let stats = broker.stats();
            prop_assert!(stats.index_entries <= sub_specs.len() as u64);
            prop_assert!(stats.distinct_subscriptions <= sub_specs.len() as u64);
            prop_assert!(stats.index_entries >= stats.distinct_subscriptions);
            broker.shutdown();
        }
    }
}
