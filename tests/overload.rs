//! Adaptive overload control, end to end: admission shedding, the
//! degraded-matching ladder, and subscriber circuit breakers observed
//! through the public broker API.
//!
//! These tests pin the load state with [`Broker::force_load_state`]
//! (the drill hook) so each overload reaction can be exercised
//! deterministically; the organic state-machine escalation is covered by
//! the chaos suite and the overload-storm bench.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tep::prelude::*;
use tep::semantics::CachedMeasure;

const FLUSH: Duration = Duration::from_secs(30);

fn exact_broker(overload: OverloadConfig) -> Broker {
    Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default()
            .with_workers(1)
            .with_overload_control(overload),
    )
}

#[test]
fn overload_control_is_off_by_default() {
    let broker = Broker::start(Arc::new(ExactMatcher::new()), BrokerConfig::default());
    assert_eq!(broker.load_state(), None);
    assert_eq!(broker.open_breakers(), 0);
    assert!(broker.overload_json().contains("\"enabled\": false"));

    // publish_with metadata is accepted and inert without the controller:
    // deadlines in the past still deliver because nothing sheds.
    let (_, rx) = broker
        .subscribe(parse_subscription("{a= 1}").unwrap())
        .unwrap();
    let expired = Instant::now() - Duration::from_millis(50);
    broker
        .publish_with(
            parse_event("{a: 1}").unwrap(),
            PublishOptions::default()
                .with_deadline(expired)
                .with_priority(0),
        )
        .unwrap();
    broker.flush_timeout(FLUSH).unwrap();
    assert!(rx.try_recv().is_ok(), "no controller, no shedding");
    let stats = broker.stats();
    assert_eq!(stats.shed_deadline + stats.shed_load, 0);
    assert_eq!(stats.breaker_trips + stats.breaker_open, 0);
    broker.close();
}

#[test]
fn expired_deadlines_are_shed_under_overloaded() {
    let broker = exact_broker(OverloadConfig::default());
    let (_, rx) = broker
        .subscribe(parse_subscription("{a= 1}").unwrap())
        .unwrap();
    broker.force_load_state(Some(LoadState::Overloaded));

    let expired = Instant::now() - Duration::from_millis(50);
    broker
        .publish_with(
            parse_event("{a: 1}").unwrap(),
            PublishOptions::default().with_deadline(expired),
        )
        .unwrap();
    broker
        .publish_with(
            parse_event("{a: 1}").unwrap(),
            PublishOptions::default().with_deadline(Instant::now() + Duration::from_secs(60)),
        )
        .unwrap();
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker.flush_timeout(FLUSH).unwrap();

    let stats = broker.stats();
    assert_eq!(stats.shed_deadline, 1, "only the expired event is shed");
    assert_eq!(stats.shed_load, 0);
    assert_eq!(
        stats.notifications, 2,
        "live-deadline and no-deadline deliver"
    );
    assert_eq!(stats.processed, 3, "shed events still count as processed");
    assert_eq!(rx.try_iter().count(), 2);
    assert!(broker.overload_json().contains("\"shed_deadline\": 1"));
    broker.close();
}

#[test]
fn low_priority_events_are_shed_under_critical_only() {
    let broker = exact_broker(OverloadConfig {
        shed_priority_floor: 50,
        ..OverloadConfig::default()
    });
    let (_, rx) = broker
        .subscribe(parse_subscription("{a= 1}").unwrap())
        .unwrap();

    // Overloaded: the priority floor does not apply yet.
    broker.force_load_state(Some(LoadState::Overloaded));
    broker
        .publish_with(
            parse_event("{a: 1}").unwrap(),
            PublishOptions::default().with_priority(10),
        )
        .unwrap();
    broker.flush_timeout(FLUSH).unwrap();
    assert_eq!(broker.stats().shed_load, 0);

    // Critical: below-floor events are shed, at-or-above-floor survive.
    broker.force_load_state(Some(LoadState::Critical));
    broker
        .publish_with(
            parse_event("{a: 1}").unwrap(),
            PublishOptions::default().with_priority(10),
        )
        .unwrap();
    broker
        .publish_with(
            parse_event("{a: 1}").unwrap(),
            PublishOptions::default().with_priority(50),
        )
        .unwrap();
    broker.flush_timeout(FLUSH).unwrap();

    let stats = broker.stats();
    assert_eq!(stats.shed_load, 1);
    assert_eq!(stats.shed_deadline, 0);
    assert_eq!(stats.processed, 3);
    assert_eq!(rx.try_iter().count(), 2);
    broker.close();
}

/// The degradation ladder observed through delivery behavior: a pair of
/// terms that only matches *semantically* is delivered under `Full`
/// fidelity, delivered under `CacheOnly` once (and only once) the
/// relatedness cache is warm, and suppressed under `ExactOnly`.
#[test]
fn degraded_matching_ladder_changes_what_is_delivered() {
    let corpus = Corpus::generate(&CorpusConfig::small().with_num_docs(900));
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    let matcher = Arc::new(ProbabilisticMatcher::new(
        CachedMeasure::new(ThematicEsaMeasure::new(pvsm)),
        MatcherConfig::top1(),
    ));
    let broker = Broker::start(
        Arc::clone(&matcher),
        BrokerConfig::default()
            .with_workers(1)
            .with_delivery_threshold(0.50)
            .with_overload_control(OverloadConfig::default()),
    );
    let subscription = parse_subscription(
        "({energy policy, building energy}, {type~= increased energy usage event~})",
    )
    .unwrap();
    let event = parse_event(
        "({energy policy, building energy}, \
         {type: increased energy consumption event, device: kettle})",
    )
    .unwrap();
    let (_, rx) = broker.subscribe(subscription.clone()).unwrap();
    let recv = |label: &str| -> usize {
        broker
            .flush_timeout(FLUSH)
            .unwrap_or_else(|e| panic!("{label}: {e:?}"));
        rx.try_iter().count()
    };

    // Cold cache + CacheOnly: the semantic pair cannot be scored, so the
    // approximate subscription stays silent.
    broker.force_load_state(Some(LoadState::Overloaded));
    assert!(
        broker
            .overload_json()
            .contains("\"degraded_matching\": \"cache_only\""),
        "{}",
        broker.overload_json()
    );
    broker.publish(event.clone()).unwrap();
    assert_eq!(recv("cold cache_only"), 0);

    // Full fidelity delivers and warms the cache as a side effect.
    broker.force_load_state(None);
    broker.publish(event.clone()).unwrap();
    assert_eq!(recv("full"), 1);

    // Warm cache + CacheOnly: same decision as full fidelity, served
    // from the memo table.
    broker.force_load_state(Some(LoadState::Overloaded));
    broker.publish(event.clone()).unwrap();
    assert_eq!(recv("warm cache_only"), 1);

    // ExactOnly: the approximate predicate needs term equality, which
    // this pair does not have.
    broker.force_load_state(Some(LoadState::Critical));
    broker.publish(event.clone()).unwrap();
    assert_eq!(recv("exact_only"), 0);

    // Releasing the pin restores full fidelity.
    broker.force_load_state(None);
    broker.publish(event).unwrap();
    assert_eq!(recv("restored"), 1);
    broker.close();
}

#[test]
fn breaker_trips_on_consecutive_failures_and_closes_after_probe() {
    let overload = OverloadConfig {
        breaker: BreakerConfig {
            failure_threshold: 3,
            open_backoff_ms: 20,
            max_backoff_ms: 40,
            half_open_probes: 1,
            reap_after_cycles: 1_000,
            jitter_seed: 7,
        },
        ..OverloadConfig::default()
    };
    let mut config = BrokerConfig::default()
        .with_workers(1)
        .with_overload_control(overload);
    config.notification_capacity = 2;
    let broker = Broker::start(Arc::new(ExactMatcher::new()), config);
    let (_, rx) = broker
        .subscribe(parse_subscription("{a= 1}").unwrap())
        .unwrap();

    // 2 fills + 3 full-channel failures trip the breaker; everything
    // after that is dropped at the open breaker without a send attempt.
    for _ in 0..10 {
        broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    }
    broker.flush_timeout(FLUSH).unwrap();
    let stats = broker.stats();
    assert_eq!(stats.notifications, 2);
    assert_eq!(stats.dropped_full, 3, "failures before the trip");
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(
        stats.breaker_open, 5,
        "post-trip drops hit the open breaker"
    );
    assert_eq!(broker.open_breakers(), 1);
    assert!(broker.overload_json().contains("\"breaker_trips\": 1"));

    // Subscriber catches up; after the backoff the half-open probe
    // succeeds and the breaker closes again.
    assert_eq!(rx.try_iter().count(), 2);
    std::thread::sleep(Duration::from_millis(60));
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker.flush_timeout(FLUSH).unwrap();
    assert_eq!(rx.try_iter().count(), 1, "probe delivery goes through");
    assert_eq!(broker.open_breakers(), 0);
    assert_eq!(broker.stats().breaker_trips, 1, "no second trip");
    broker.close();
}

#[test]
fn breaker_reaps_persistently_failing_subscriber() {
    let overload = OverloadConfig {
        breaker: BreakerConfig {
            failure_threshold: 1,
            open_backoff_ms: 1,
            max_backoff_ms: 2,
            half_open_probes: 1,
            reap_after_cycles: 1,
            jitter_seed: 7,
        },
        ..OverloadConfig::default()
    };
    let mut config = BrokerConfig::default()
        .with_workers(1)
        .with_overload_control(overload);
    config.notification_capacity = 1;
    let broker = Broker::start(Arc::new(ExactMatcher::new()), config);
    // Held open but never drained: the subscriber is dead-slow forever.
    let (_, _rx) = broker
        .subscribe(parse_subscription("{a= 1}").unwrap())
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    while broker.stats().disconnected_subscribers == 0 {
        assert!(
            Instant::now() < deadline,
            "breaker must reap within the deadline: {:?}",
            broker.stats()
        );
        broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
        broker.flush_timeout(FLUSH).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = broker.stats();
    assert_eq!(stats.disconnected_subscribers, 1);
    assert!(stats.breaker_trips >= 1);
    assert_eq!(broker.open_breakers(), 0, "reaped registration is gone");

    // The reaped subscriber no longer consumes match tests.
    let before = broker.stats().match_tests;
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker.flush_timeout(FLUSH).unwrap();
    assert_eq!(broker.stats().match_tests, before);
    broker.close();
}

/// The drill hook is an override, not a latch: releasing it hands
/// control back to the organic state machine, which reports `Healthy`
/// on an idle broker.
#[test]
fn forced_state_reports_and_releases() {
    let broker = exact_broker(OverloadConfig::default());
    assert_eq!(broker.load_state(), Some(LoadState::Healthy));
    broker.force_load_state(Some(LoadState::Critical));
    assert_eq!(broker.load_state(), Some(LoadState::Critical));
    assert!(broker.overload_json().contains("\"forced\": true"));
    broker.force_load_state(None);
    assert_eq!(broker.load_state(), Some(LoadState::Healthy));
    assert!(broker.overload_json().contains("\"forced\": false"));
    broker.close();
}
