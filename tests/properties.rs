//! Property-based tests (proptest) for the core data structures and
//! algorithms: sparse-vector algebra, the Hungarian solver against brute
//! force, theme normalization, the subscription-language parser, and the
//! IR metrics.

use proptest::prelude::*;
use tep::matcher::assignment::{solve, solve_top_k, CostMatrix};
use tep::prelude::*;
use tep::semantics::SparseVector;
use tep_eval::metrics;

fn sparse_vector() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..64, -10.0f32..10.0), 0..24).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(d, w)| (tep::corpus::DocId(d), w))
            .collect::<SparseVector>()
    })
}

proptest! {
    #[test]
    fn sparse_add_is_commutative(a in sparse_vector(), b in sparse_vector()) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn sparse_distance_is_a_metric(a in sparse_vector(), b in sparse_vector(), c in sparse_vector()) {
        let dab = a.euclidean_distance(&b);
        let dba = b.euclidean_distance(&a);
        prop_assert!((dab - dba).abs() < 1e-5, "symmetry: {} vs {}", dab, dba);
        prop_assert!(a.euclidean_distance(&a) < 1e-6, "identity");
        // Triangle inequality.
        let dac = a.euclidean_distance(&c);
        let dcb = c.euclidean_distance(&b);
        prop_assert!(dab <= dac + dcb + 1e-4, "triangle: {} > {} + {}", dab, dac, dcb);
    }

    #[test]
    fn sparse_dot_agrees_with_norms(a in sparse_vector(), b in sparse_vector()) {
        // |a-b|^2 = |a|^2 + |b|^2 - 2<a,b>
        let lhs = a.euclidean_distance(&b).powi(2);
        let rhs = a.norm_squared() + b.norm_squared() - 2.0 * a.dot(&b);
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn sparse_distance_matches_dense_reference(a in sparse_vector(), b in sparse_vector()) {
        // Expand both sides over the full 64-slot doc range and take the
        // textbook dense L2 distance; the sparse merge-based walk must
        // agree on every randomized input, not just the fixed unit cases.
        let mut dense_a = [0.0f64; 64];
        for (d, w) in a.iter() {
            dense_a[d.0 as usize] = w as f64;
        }
        let mut dense_b = [0.0f64; 64];
        for (d, w) in b.iter() {
            dense_b[d.0 as usize] = w as f64;
        }
        let reference = dense_a
            .iter()
            .zip(dense_b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let sparse = a.euclidean_distance(&b);
        prop_assert!(
            (sparse - reference).abs() < 1e-4 * (1.0 + reference),
            "sparse {} vs dense {}",
            sparse,
            reference
        );
    }

    #[test]
    fn normalized_vectors_have_unit_norm(a in sparse_vector()) {
        let n = a.normalized();
        if a.is_zero() {
            prop_assert!(n.is_zero());
        } else {
            prop_assert!((n.norm() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn restrict_to_is_idempotent_and_shrinking(a in sparse_vector(), docs in proptest::collection::btree_set(0u32..64, 0..32)) {
        let docs: Vec<tep::corpus::DocId> = docs.into_iter().map(tep::corpus::DocId).collect();
        let once = a.restrict_to(&docs);
        let twice = once.restrict_to(&docs);
        prop_assert_eq!(once, twice);
        prop_assert!(once.nnz() <= a.nnz());
    }

    #[test]
    fn hungarian_matches_brute_force(
        n in 2usize..5,
        extra in 0usize..3,
        seed in proptest::collection::vec(0.01f64..100.0, 35),
    ) {
        let m = n + extra;
        let data: Vec<f64> = seed.into_iter().take(n * m).collect();
        prop_assume!(data.len() == n * m);
        let cost = CostMatrix::from_rows(n, m, data);
        let sol = solve(&cost).expect("feasible");
        let best = brute_force(&cost);
        prop_assert!((sol.total_cost - best).abs() < 1e-6, "{} vs {}", sol.total_cost, best);
    }

    #[test]
    fn top_k_is_sorted_and_unique(
        k in 1usize..8,
        seed in proptest::collection::vec(0.01f64..10.0, 16),
    ) {
        let cost = CostMatrix::from_rows(4, 4, seed);
        let sols = solve_top_k(&cost, k);
        prop_assert!(sols.len() <= k);
        for pair in sols.windows(2) {
            prop_assert!(pair[0].total_cost <= pair[1].total_cost + 1e-9);
        }
        for i in 0..sols.len() {
            for j in i + 1..sols.len() {
                prop_assert_ne!(&sols[i].assignment, &sols[j].assignment);
            }
        }
    }

    #[test]
    fn theme_is_order_and_case_insensitive(tags in proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8})?", 0..8)) {
        let forward = Theme::new(tags.iter().map(String::as_str));
        let mut reversed_tags = tags.clone();
        reversed_tags.reverse();
        let reversed = Theme::new(reversed_tags.iter().map(|t| t.to_uppercase()));
        prop_assert_eq!(forward, reversed);
    }

    #[test]
    fn subscription_notation_round_trips(
        attrs in proptest::collection::btree_set("[a-z]{2,8}", 1..5),
        approx in proptest::collection::vec((any::<bool>(), any::<bool>()), 5),
    ) {
        let mut builder = Subscription::builder();
        for (i, attr) in attrs.iter().enumerate() {
            let (aa, av) = approx[i % approx.len()];
            let mut p = Predicate::new(attr, &format!("value {i}"));
            if aa { p = p.approx_attribute(); }
            if av { p = p.approx_value(); }
            builder = builder.predicate(p);
        }
        let sub = builder.build().unwrap();
        let reparsed = tep::events::parse_subscription(&sub.to_string()).unwrap();
        prop_assert_eq!(sub, reparsed);
    }

    #[test]
    fn event_notation_round_trips(
        attrs in proptest::collection::btree_set("[a-z]{2,8}", 1..5),
        tags in proptest::collection::btree_set("[a-z]{2,8}", 0..4),
    ) {
        let mut builder = Event::builder().theme_tags(tags.iter());
        for (i, attr) in attrs.iter().enumerate() {
            builder = builder.tuple(attr, &format!("value {i}"));
        }
        let event = builder.build().unwrap();
        let reparsed = tep::events::parse_event(&event.to_string()).unwrap();
        prop_assert_eq!(event, reparsed);
    }

    #[test]
    fn interpolated_precision_is_bounded_and_monotone(
        flags in proptest::collection::vec(any::<bool>(), 0..40),
        total in 0usize..20,
    ) {
        let relevant_in_list = flags.iter().filter(|f| **f).count();
        let total = total.max(relevant_in_list);
        let p = metrics::interpolated_precision(&flags, total);
        for v in p {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        for w in p.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12, "interpolated precision must be non-increasing");
        }
    }

    #[test]
    fn f1_is_bounded_by_its_inputs(p in 0.0f64..1.0, r in 0.0f64..1.0) {
        let f = metrics::f1(p, r);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(f <= p.max(r) + 1e-12);
        prop_assert!(f >= 0.0);
    }
}

/// Brute-force minimum assignment cost over all injective row→column maps.
fn brute_force(c: &CostMatrix) -> f64 {
    fn rec(c: &CostMatrix, row: usize, used: &mut Vec<bool>) -> f64 {
        if row == c.rows() {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for col in 0..c.cols() {
            if !used[col] {
                used[col] = true;
                let v = c.get(row, col) + rec(c, row + 1, used);
                used[col] = false;
                best = best.min(v);
            }
        }
        best
    }
    rec(c, 0, &mut vec![false; c.cols()])
}
