//! Broker middleware integration: thematic matching under concurrent
//! publish load, subscription churn, and back-pressure.

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;

fn thematic_matcher() -> Arc<ProbabilisticMatcher<ThematicEsaMeasure>> {
    let corpus = Corpus::generate(&CorpusConfig::small().with_num_docs(900));
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    Arc::new(ProbabilisticMatcher::new(
        ThematicEsaMeasure::new(pvsm),
        MatcherConfig::top1(),
    ))
}

#[test]
fn thematic_broker_delivers_semantic_matches_only() {
    let broker = Broker::start(
        thematic_matcher(),
        BrokerConfig::default()
            .with_workers(2)
            // Single-predicate subscription: the relatedness floor for a
            // pair of unrelated known terms is ~0.41 (unit vectors at 90°,
            // Eq. 6), so the threshold must sit above it.
            .with_delivery_threshold(0.50),
    );
    let (_, rx) = broker
        .subscribe(
            parse_subscription(
                "({energy policy, building energy}, {type~= increased energy usage event~})",
            )
            .unwrap(),
        )
        .unwrap();

    broker
        .publish(
            parse_event(
                "({energy policy, building energy}, \
                 {type: increased energy consumption event, device: kettle})",
            )
            .unwrap(),
        )
        .unwrap();
    broker
        .publish(
            parse_event(
                "({land transport, road safety}, \
                 {type: parking space occupied event, street: main street})",
            )
            .unwrap(),
        )
        .unwrap();
    broker
        .flush_timeout(Duration::from_secs(30))
        .expect("broker must drain within the deadline");

    let notifications: Vec<Notification> = rx.try_iter().collect();
    assert_eq!(
        notifications.len(),
        1,
        "only the energy event may be delivered; got {notifications:?}"
    );
    assert_eq!(
        notifications[0].event.value_of("type"),
        Some("increased energy consumption event")
    );
    assert!(notifications[0].score() >= 0.50);
    broker.shutdown();
}

#[test]
fn concurrent_publishers_all_events_processed() {
    let broker = Arc::new(Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(4),
    ));
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();

    let mut handles = Vec::new();
    for t in 0..4 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            for i in 0..100 {
                let kind = if i % 2 == 0 { "wanted" } else { "other" };
                broker
                    .publish(
                        parse_event(&format!("{{kind: {kind}, thread: t{t}, seq: n{i}}}")).unwrap(),
                    )
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    broker
        .flush_timeout(Duration::from_secs(30))
        .expect("broker must drain within the deadline");
    let stats = broker.stats();
    assert_eq!(stats.published, 400);
    assert_eq!(stats.processed, 400);
    assert_eq!(rx.try_iter().count(), 200);
}

#[test]
fn subscription_churn_under_load() {
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(2),
    );
    let (id1, rx1) = broker
        .subscribe(parse_subscription("{a= 1}").unwrap())
        .unwrap();
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker
        .flush_timeout(Duration::from_secs(30))
        .expect("broker must drain within the deadline");
    assert_eq!(rx1.try_iter().count(), 1);

    assert!(broker.unsubscribe(id1));
    let (_, rx2) = broker
        .subscribe(parse_subscription("{a= 1}").unwrap())
        .unwrap();
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker
        .flush_timeout(Duration::from_secs(30))
        .expect("broker must drain within the deadline");
    assert_eq!(
        rx1.try_iter().count(),
        0,
        "unsubscribed channel stays silent"
    );
    assert_eq!(rx2.try_iter().count(), 1);
    assert_eq!(broker.subscription_count(), 1);
    broker.shutdown();
}

#[test]
fn notifications_carry_full_match_results() {
    let broker = Broker::start(
        thematic_matcher(),
        BrokerConfig::default().with_delivery_threshold(0.2),
    );
    let (_, rx) = broker
        .subscribe(
            parse_subscription(
                "({energy metering, information technology}, {type~= increased energy usage event~, device~= laptop~})",
            )
            .unwrap(),
        )
        .unwrap();
    broker
        .publish(
            parse_event(
                "({energy metering, information technology}, \
                 {type: increased energy consumption event, device: computer, office: room 112})",
            )
            .unwrap(),
        )
        .unwrap();
    broker
        .flush_timeout(Duration::from_secs(30))
        .expect("broker must drain within the deadline");
    let n = rx.try_recv().expect("delivery expected");
    let mapping = n.result.best().expect("mapping present");
    assert_eq!(mapping.correspondences().len(), 2);
    assert!(mapping.score() > 0.0);
    broker.shutdown();
}

#[test]
fn publishes_racing_shutdown_fail_cleanly() {
    let broker = Arc::new(Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(2),
    ));
    let (_, _rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();

    let mut handles = Vec::new();
    for t in 0..4 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let mut accepted = 0u64;
            for i in 0..200 {
                match broker.publish(
                    parse_event(&format!("{{kind: wanted, thread: t{t}, seq: n{i}}}")).unwrap(),
                ) {
                    Ok(()) => accepted += 1,
                    Err(BrokerError::Closed) => break,
                    Err(other) => panic!("unexpected publish error: {other}"),
                }
            }
            accepted
        }));
    }
    // Close mid-stream from the main thread; publishers must either get
    // their event accepted or see a clean `Closed`, never a hang or panic.
    std::thread::sleep(Duration::from_millis(1));
    broker.close();
    let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    broker
        .flush_timeout(Duration::from_secs(30))
        .expect("accepted events must still drain after close");
    let stats = broker.stats();
    assert_eq!(
        stats.published, accepted,
        "publish accounting must agree with callers"
    );
    assert_eq!(
        stats.processed, accepted,
        "every accepted event must be processed"
    );
    assert!(
        broker
            .subscribe(parse_subscription("{a= 1}").unwrap())
            .is_err(),
        "subscribe after close must fail"
    );
}

#[test]
fn subscribes_racing_shutdown_fail_cleanly() {
    let broker = Arc::new(Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(1),
    ));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            for i in 0..100 {
                match broker.subscribe(parse_subscription(&format!("{{a= {i}}}")).unwrap()) {
                    Ok(_) => {}
                    Err(BrokerError::Closed) => return,
                    Err(other) => panic!("unexpected subscribe error: {other}"),
                }
            }
        }));
    }
    broker.close();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn shutdown_after_close_and_drop_after_shutdown_are_safe() {
    // close() then drop: Drop's shutdown_in_place must be a no-op second
    // time around, not a double-join or deadlock.
    let broker = Broker::start(Arc::new(ExactMatcher::new()), BrokerConfig::default());
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker.close();
    broker.close();
    drop(broker);

    // shutdown() consumes the broker and Drop runs right behind it.
    let broker = Broker::start(Arc::new(ExactMatcher::new()), BrokerConfig::default());
    broker.shutdown();
}

#[test]
fn shutdown_with_full_ingress_queue_drains_and_rejects_cleanly() {
    // One slot, one worker wedged behind a slow matcher: the queue is full
    // at close time, yet close must not lose accepted events or hang.
    let slow = FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(7).with_latency(1.0, Duration::from_millis(20)),
    );
    let broker = Broker::start(
        Arc::new(slow),
        BrokerConfig {
            workers: 1,
            queue_capacity: 1,
            publish_policy: PublishPolicy::Reject,
            ..BrokerConfig::default()
        },
    );
    let (_, rx) = broker
        .subscribe(parse_subscription("{k= hit}").unwrap())
        .unwrap();
    let mut accepted = 0;
    for i in 0..8 {
        match broker.publish(parse_event(&format!("{{k: hit, seq: n{i}}}")).unwrap()) {
            Ok(()) => accepted += 1,
            Err(BrokerError::QueueFull) => {}
            Err(other) => panic!("unexpected publish error: {other}"),
        }
    }
    broker.close();
    assert_eq!(
        broker.publish(parse_event("{k: hit}").unwrap()),
        Err(BrokerError::Closed),
        "post-close publishes must report Closed, not QueueFull"
    );
    broker
        .flush_timeout(Duration::from_secs(30))
        .expect("the full queue must drain after close");
    assert_eq!(broker.stats().processed, accepted);
    assert_eq!(rx.try_iter().count(), accepted as usize);
    broker.shutdown();
}
