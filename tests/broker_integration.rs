//! Broker middleware integration: thematic matching under concurrent
//! publish load, subscription churn, and back-pressure.

use std::sync::Arc;
use tep::prelude::*;

fn thematic_matcher() -> Arc<ProbabilisticMatcher<ThematicEsaMeasure>> {
    let corpus = Corpus::generate(&CorpusConfig::small().with_num_docs(900));
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    Arc::new(ProbabilisticMatcher::new(
        ThematicEsaMeasure::new(pvsm),
        MatcherConfig::top1(),
    ))
}

#[test]
fn thematic_broker_delivers_semantic_matches_only() {
    let broker = Broker::start(
        thematic_matcher(),
        BrokerConfig::default()
            .with_workers(2)
            // Single-predicate subscription: the relatedness floor for a
            // pair of unrelated known terms is ~0.41 (unit vectors at 90°,
            // Eq. 6), so the threshold must sit above it.
            .with_delivery_threshold(0.50),
    );
    let (_, rx) = broker
        .subscribe(
            parse_subscription(
                "({energy policy, building energy}, {type~= increased energy usage event~})",
            )
            .unwrap(),
        )
        .unwrap();

    broker
        .publish(
            parse_event(
                "({energy policy, building energy}, \
                 {type: increased energy consumption event, device: kettle})",
            )
            .unwrap(),
        )
        .unwrap();
    broker
        .publish(
            parse_event(
                "({land transport, road safety}, \
                 {type: parking space occupied event, street: main street})",
            )
            .unwrap(),
        )
        .unwrap();
    broker.flush();

    let notifications: Vec<Notification> = rx.try_iter().collect();
    assert_eq!(
        notifications.len(),
        1,
        "only the energy event may be delivered; got {notifications:?}"
    );
    assert_eq!(
        notifications[0].event.value_of("type"),
        Some("increased energy consumption event")
    );
    assert!(notifications[0].score() >= 0.50);
    broker.shutdown();
}

#[test]
fn concurrent_publishers_all_events_processed() {
    let broker = Arc::new(Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(4),
    ));
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();

    let mut handles = Vec::new();
    for t in 0..4 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            for i in 0..100 {
                let kind = if i % 2 == 0 { "wanted" } else { "other" };
                broker
                    .publish(
                        parse_event(&format!("{{kind: {kind}, thread: t{t}, seq: n{i}}}")).unwrap(),
                    )
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    broker.flush();
    let stats = broker.stats();
    assert_eq!(stats.published, 400);
    assert_eq!(stats.processed, 400);
    assert_eq!(rx.try_iter().count(), 200);
}

#[test]
fn subscription_churn_under_load() {
    let broker = Broker::start(
        Arc::new(ExactMatcher::new()),
        BrokerConfig::default().with_workers(2),
    );
    let (id1, rx1) = broker.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker.flush();
    assert_eq!(rx1.try_iter().count(), 1);

    assert!(broker.unsubscribe(id1));
    let (_, rx2) = broker.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
    broker.publish(parse_event("{a: 1}").unwrap()).unwrap();
    broker.flush();
    assert_eq!(rx1.try_iter().count(), 0, "unsubscribed channel stays silent");
    assert_eq!(rx2.try_iter().count(), 1);
    assert_eq!(broker.subscription_count(), 1);
    broker.shutdown();
}

#[test]
fn notifications_carry_full_match_results() {
    let broker = Broker::start(
        thematic_matcher(),
        BrokerConfig::default().with_delivery_threshold(0.2),
    );
    let (_, rx) = broker
        .subscribe(
            parse_subscription(
                "({energy metering, information technology}, {type~= increased energy usage event~, device~= laptop~})",
            )
            .unwrap(),
        )
        .unwrap();
    broker
        .publish(
            parse_event(
                "({energy metering, information technology}, \
                 {type: increased energy consumption event, device: computer, office: room 112})",
            )
            .unwrap(),
        )
        .unwrap();
    broker.flush();
    let n = rx.try_recv().expect("delivery expected");
    let mapping = n.result.best().expect("mapping present");
    assert_eq!(mapping.correspondences().len(), 2);
    assert!(mapping.score() > 0.0);
    broker.shutdown();
}
