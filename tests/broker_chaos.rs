//! Chaos integration tests: a seeded [`FaultInjectingMatcher`] drives
//! panics and latency through the supervised broker while the tests
//! assert liveness (everything drains within a deadline), counter
//! consistency, and zero lost non-faulty events.
//!
//! Fault decisions are a pure function of event content and the seed, so
//! the expected panic/delivery counts are precomputed exactly — the
//! assertions are equalities, not tolerances.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tep::prelude::*;

/// Keeps the injected panics from flooding test output: anything whose
/// payload mentions the injected-fault marker is silenced, everything
/// else goes to the default hook.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected matcher fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("injected matcher fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// The expected outcome of one chaos run, precomputed from the seeded
/// fault decisions before any event is published.
struct Expectation {
    panics: u64,
    errors: u64,
    delivered: u64,
}

fn precompute(matcher: &FaultInjectingMatcher<ExactMatcher>, events: &[Event]) -> Expectation {
    let mut exp = Expectation {
        panics: 0,
        errors: 0,
        delivered: 0,
    };
    for e in events {
        match matcher.fault_for(e) {
            Fault::Panic => exp.panics += 1,
            Fault::Error => exp.errors += 1,
            // Latency-only and clean events still match; every event in
            // the chaos workload satisfies the subscription.
            _ => exp.delivered += 1,
        }
    }
    exp
}

fn chaos_events(count: usize) -> Vec<Event> {
    (0..count)
        .map(|i| parse_event(&format!("{{kind: wanted, seq: n{i}}}")).unwrap())
        .collect()
}

#[test]
fn chaos_isolated_panics_lose_no_clean_events() {
    silence_injected_panics();
    let started = Instant::now();

    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(0xC4A05)
            .with_panic_rate(0.01)
            .with_error_rate(0.005)
            .with_latency(0.002, Duration::from_micros(200)),
    ));
    let events = chaos_events(10_000);
    let exp = precompute(&matcher, &events);
    assert!(exp.panics > 0, "the seed must inject some panics");

    // One subscription + an attempt budget of 1 makes the counter algebra
    // exact: every faulty event costs exactly one caught panic and one
    // quarantine slot-less increment.
    let config = BrokerConfig {
        workers: 4,
        notification_capacity: 16_384,
        max_match_attempts: 1,
        ..BrokerConfig::default()
    };
    let workers = config.workers as u64;
    let broker = Broker::start(Arc::clone(&matcher), config);
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();
    for e in &events {
        broker.publish(e.clone()).unwrap();
    }
    broker
        .flush_timeout(Duration::from_secs(20))
        .expect("chaos workload must drain within the deadline");

    // Unlike the unisolated sibling below, no settle poll is needed here:
    // with isolation on, every counter asserted (panics, quarantines,
    // match tests, notifications) is incremented by the worker *before*
    // the same worker increments `processed`, so once `flush_timeout`
    // observes processed == published the snapshot is final — no
    // supervisor-thread bookkeeping is in flight.
    let stats = broker.stats();
    assert_eq!(stats.published, 10_000);
    assert_eq!(
        stats.processed, 10_000,
        "every accepted event finishes exactly once"
    );
    assert_eq!(stats.match_tests, 10_000);
    assert_eq!(
        stats.worker_panics, exp.panics,
        "every injected panic is caught once"
    );
    assert_eq!(
        stats.quarantined, exp.panics,
        "every panicking event is quarantined"
    );
    assert_eq!(
        stats.workers_respawned, 0,
        "isolation must keep every worker alive"
    );
    assert_eq!(
        stats.live_workers, workers,
        "the full pool survives the chaos run"
    );
    assert_eq!(stats.notifications, exp.delivered);
    assert_eq!(stats.dropped_full, 0);
    assert_eq!(stats.dropped_disconnected, 0);
    assert_eq!(
        rx.try_iter().count() as u64,
        exp.delivered,
        "every non-faulty match must be delivered (errors degrade {} events)",
        exp.errors
    );
    let letters = broker.dead_letters();
    assert!(letters
        .iter()
        .all(|d| matcher.fault_for(&d.event) == Fault::Panic));
    broker.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "chaos test must stay within its time budget"
    );
}

#[test]
fn chaos_unisolated_panics_are_survived_by_respawn() {
    silence_injected_panics();
    let started = Instant::now();

    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(0xD15EA5E).with_panic_rate(0.01),
    ));
    let events = chaos_events(4_000);
    let exp = precompute(&matcher, &events);
    assert!(exp.panics > 0, "the seed must inject some panics");

    let config = BrokerConfig {
        workers: 4,
        notification_capacity: 16_384,
        max_match_attempts: 1,
        isolate_matcher_panics: false,
        ..BrokerConfig::default()
    };
    let workers = config.workers as u64;
    let broker = Broker::start(Arc::clone(&matcher), config);
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();
    for e in &events {
        broker.publish(e.clone()).unwrap();
    }
    broker
        .flush_timeout(Duration::from_secs(20))
        .expect("chaos workload must drain despite worker deaths");

    // `flush_timeout` returns the moment the last crashed event is
    // recovered (quarantined), which the supervisor does *before*
    // finishing the matching respawn — so `workers_respawned` and
    // `live_workers` can lag `processed` by a few supervisor poll ticks.
    // Poll until the bookkeeping settles instead of asserting on a
    // snapshot racing the supervisor thread.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let s = broker.stats();
        if s.workers_respawned == exp.panics && s.live_workers == workers {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let stats = broker.stats();
    assert_eq!(stats.published, 4_000);
    assert_eq!(stats.processed, 4_000);
    assert_eq!(
        stats.worker_panics, exp.panics,
        "each faulty event kills one worker"
    );
    assert_eq!(
        stats.workers_respawned, exp.panics,
        "each death is answered by a respawn"
    );
    assert_eq!(stats.quarantined, exp.panics);
    assert_eq!(
        stats.live_workers, workers,
        "the pool is back to full strength"
    );
    // The faulty events crash before any delivery (single subscription),
    // so at-least-once recovery cannot duplicate notifications here.
    assert_eq!(stats.notifications, exp.delivered);
    assert_eq!(rx.try_iter().count() as u64, exp.delivered);
    broker.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "chaos test must stay within its time budget"
    );
}
