//! Chaos integration tests: a seeded [`FaultInjectingMatcher`] drives
//! panics and latency through the supervised broker while the tests
//! assert liveness (everything drains within a deadline), counter
//! consistency, and zero lost non-faulty events.
//!
//! Fault decisions are a pure function of event content and the seed, so
//! the expected panic/delivery counts are precomputed exactly — the
//! assertions are equalities, not tolerances.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tep::prelude::*;

/// Keeps the injected panics from flooding test output: anything whose
/// payload mentions the injected-fault marker is silenced, everything
/// else goes to the default hook.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected matcher fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("injected matcher fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// Fault seed for one chaos test: `TEP_CHAOS_SEED` (decimal or `0x` hex)
/// overrides the per-test default, so CI can sweep a seed matrix without
/// recompiling. Expectations are precomputed from the same seeded
/// matcher, so every assertion stays exact under any seed.
fn chaos_seed(default: u64) -> u64 {
    match std::env::var("TEP_CHAOS_SEED") {
        Ok(v) => {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| v.parse())
                .unwrap_or_else(|e| panic!("TEP_CHAOS_SEED {v:?} is not a u64: {e}"))
        }
        Err(_) => default,
    }
}

/// The expected outcome of one chaos run, precomputed from the seeded
/// fault decisions before any event is published.
struct Expectation {
    panics: u64,
    errors: u64,
    delivered: u64,
}

fn precompute(matcher: &FaultInjectingMatcher<ExactMatcher>, events: &[Event]) -> Expectation {
    let mut exp = Expectation {
        panics: 0,
        errors: 0,
        delivered: 0,
    };
    for e in events {
        match matcher.fault_for(e) {
            Fault::Panic => exp.panics += 1,
            Fault::Error => exp.errors += 1,
            // Latency-only and clean events still match; every event in
            // the chaos workload satisfies the subscription.
            _ => exp.delivered += 1,
        }
    }
    exp
}

fn chaos_events(count: usize) -> Vec<Event> {
    (0..count)
        .map(|i| parse_event(&format!("{{kind: wanted, seq: n{i}}}")).unwrap())
        .collect()
}

#[test]
fn chaos_isolated_panics_lose_no_clean_events() {
    silence_injected_panics();
    let started = Instant::now();

    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(chaos_seed(0xC4A05))
            .with_panic_rate(0.01)
            .with_error_rate(0.005)
            .with_latency(0.002, Duration::from_micros(200)),
    ));
    let events = chaos_events(10_000);
    let exp = precompute(&matcher, &events);
    assert!(exp.panics > 0, "the seed must inject some panics");

    // One subscription + an attempt budget of 1 makes the counter algebra
    // exact: every faulty event costs exactly one caught panic and one
    // quarantine slot-less increment.
    let config = BrokerConfig {
        workers: 4,
        notification_capacity: 16_384,
        max_match_attempts: 1,
        ..BrokerConfig::default()
    };
    let workers = config.workers as u64;
    let broker = Broker::start(Arc::clone(&matcher), config);
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();
    for e in &events {
        broker.publish(e.clone()).unwrap();
    }
    broker
        .flush_timeout(Duration::from_secs(20))
        .expect("chaos workload must drain within the deadline");

    // Unlike the unisolated sibling below, no settle poll is needed here:
    // with isolation on, every counter asserted (panics, quarantines,
    // match tests, notifications) is incremented by the worker *before*
    // the same worker increments `processed`, so once `flush_timeout`
    // observes processed == published the snapshot is final — no
    // supervisor-thread bookkeeping is in flight.
    let stats = broker.stats();
    assert_eq!(stats.published, 10_000);
    assert_eq!(
        stats.processed, 10_000,
        "every accepted event finishes exactly once"
    );
    assert_eq!(stats.match_tests, 10_000);
    assert_eq!(
        stats.worker_panics, exp.panics,
        "every injected panic is caught once"
    );
    assert_eq!(
        stats.quarantined, exp.panics,
        "every panicking event is quarantined"
    );
    assert_eq!(
        stats.workers_respawned, 0,
        "isolation must keep every worker alive"
    );
    assert_eq!(
        stats.live_workers, workers,
        "the full pool survives the chaos run"
    );
    assert_eq!(stats.notifications, exp.delivered);
    assert_eq!(stats.dropped_full, 0);
    assert_eq!(stats.dropped_disconnected, 0);
    assert_eq!(
        rx.try_iter().count() as u64,
        exp.delivered,
        "every non-faulty match must be delivered (errors degrade {} events)",
        exp.errors
    );
    let letters = broker.dead_letters();
    assert!(letters
        .iter()
        .all(|d| matcher.fault_for(&d.event) == Fault::Panic));
    broker.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "chaos test must stay within its time budget"
    );
}

/// Supervisor respawn under sustained overload: unisolated panic storms
/// while the ingress queue is pinned full by a slow matcher and a
/// `Reject` publish policy. Every accepted event must finish exactly
/// once (no double-quarantine from the recovery path) and the flush must
/// terminate even though most publishes bounce.
#[test]
fn chaos_respawn_with_full_ingress_queue() {
    silence_injected_panics();
    let started = Instant::now();

    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(chaos_seed(0x00F0_11ED))
            .with_panic_rate(0.05)
            .with_latency(1.0, Duration::from_micros(300)),
    ));
    let events = chaos_events(2_000);

    let config = BrokerConfig {
        workers: 2,
        queue_capacity: 8,
        notification_capacity: 16_384,
        max_match_attempts: 1,
        isolate_matcher_panics: false,
        publish_policy: PublishPolicy::Reject,
        ..BrokerConfig::default()
    };
    let workers = config.workers as u64;
    let broker = Broker::start(Arc::clone(&matcher), config);
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();

    // The 8-slot queue under a 300 µs/match matcher bounces most publish
    // attempts; each event retries until it is accepted, so the ingress
    // queue stays pinned full for the whole storm while every event
    // still enters the pipeline exactly once.
    let mut rejected = 0u64;
    for e in &events {
        loop {
            match broker.publish(e.clone()) {
                Ok(()) => break,
                Err(BrokerError::QueueFull) => {
                    rejected += 1;
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(other) => panic!("unexpected publish error: {other:?}"),
            }
        }
    }
    assert!(rejected > 0, "the queue must actually fill");
    let exp = precompute(&matcher, &events);
    assert!(exp.panics > 0, "the seed must inject panics into the storm");

    broker
        .flush_timeout(Duration::from_secs(20))
        .expect("flush must terminate despite rejections and respawns");

    // Settle poll, as in the unisolated sibling: respawn bookkeeping can
    // lag the last quarantine by a few supervisor ticks.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let s = broker.stats();
        if s.workers_respawned == exp.panics && s.live_workers == workers {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let stats = broker.stats();
    assert_eq!(stats.published, events.len() as u64);
    assert_eq!(stats.rejected_publishes, rejected);
    assert_eq!(
        stats.processed,
        events.len() as u64,
        "every accepted event finishes exactly once"
    );
    assert_eq!(
        stats.quarantined, exp.panics,
        "each crashed event is quarantined exactly once"
    );
    assert_eq!(stats.worker_panics, exp.panics);
    assert_eq!(stats.workers_respawned, exp.panics);
    assert_eq!(stats.live_workers, workers);
    assert_eq!(stats.notifications, exp.delivered);
    assert_eq!(rx.try_iter().count() as u64, exp.delivered);
    broker.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(40),
        "chaos test must stay within its time budget"
    );
}

/// The tentpole liveness property: a seeded overload storm drives the
/// load-state machine out of `Healthy`, sheds work, and — once the storm
/// stops and the subscribers catch up — the broker walks back to
/// `Healthy` on its own.
#[test]
fn chaos_overload_storm_recovers_to_healthy() {
    silence_injected_panics();
    let started = Instant::now();

    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(chaos_seed(0x0057_0714)).with_latency(1.0, Duration::from_micros(300)),
    ));
    let config = BrokerConfig {
        workers: 2,
        queue_capacity: 16,
        notification_capacity: 4,
        ..BrokerConfig::default()
    }
    .with_overload_control(OverloadConfig {
        shed_priority_floor: 50,
        ..OverloadConfig::sensitive()
    });
    let broker = Broker::start(Arc::clone(&matcher), config);
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();

    let mut peak = LoadState::Healthy;
    for e in &chaos_events(800) {
        broker
            .publish_with(
                e.clone(),
                PublishOptions::default()
                    .with_ttl(Duration::from_millis(1))
                    .with_priority(10),
            )
            .unwrap();
        peak = peak.max(broker.load_state().expect("overload control is on"));
    }
    assert!(
        peak >= LoadState::Overloaded,
        "the storm must escalate the state machine, peaked at {peak:?}"
    );

    broker
        .flush_timeout(Duration::from_secs(20))
        .expect("shedding keeps the flush bounded");
    let stats = broker.stats();
    assert_eq!(stats.published, 800);
    assert_eq!(stats.processed, 800, "shed events still count as processed");
    assert!(
        stats.shed_deadline + stats.shed_load > 0,
        "an escalated storm with 1 ms deadlines must shed: {stats:?}"
    );

    // Storm over: drain the subscriber and poll the organic state machine
    // back to `Healthy` (idle decay must get there without new traffic).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        while rx.try_recv().is_ok() {}
        if broker.load_state() == Some(LoadState::Healthy) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "broker must recover to healthy, stuck at {:?}",
            broker.load_state()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    broker.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(40),
        "chaos test must stay within its time budget"
    );
}

#[test]
fn chaos_unisolated_panics_are_survived_by_respawn() {
    silence_injected_panics();
    let started = Instant::now();

    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(chaos_seed(0xD15EA5E)).with_panic_rate(0.01),
    ));
    let events = chaos_events(4_000);
    let exp = precompute(&matcher, &events);
    assert!(exp.panics > 0, "the seed must inject some panics");

    let config = BrokerConfig {
        workers: 4,
        notification_capacity: 16_384,
        max_match_attempts: 1,
        isolate_matcher_panics: false,
        ..BrokerConfig::default()
    };
    let workers = config.workers as u64;
    let broker = Broker::start(Arc::clone(&matcher), config);
    let (_, rx) = broker
        .subscribe(parse_subscription("{kind= wanted}").unwrap())
        .unwrap();
    for e in &events {
        broker.publish(e.clone()).unwrap();
    }
    broker
        .flush_timeout(Duration::from_secs(20))
        .expect("chaos workload must drain despite worker deaths");

    // `flush_timeout` returns the moment the last crashed event is
    // recovered (quarantined), which the supervisor does *before*
    // finishing the matching respawn — so `workers_respawned` and
    // `live_workers` can lag `processed` by a few supervisor poll ticks.
    // Poll until the bookkeeping settles instead of asserting on a
    // snapshot racing the supervisor thread.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let s = broker.stats();
        if s.workers_respawned == exp.panics && s.live_workers == workers {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let stats = broker.stats();
    assert_eq!(stats.published, 4_000);
    assert_eq!(stats.processed, 4_000);
    assert_eq!(
        stats.worker_panics, exp.panics,
        "each faulty event kills one worker"
    );
    assert_eq!(
        stats.workers_respawned, exp.panics,
        "each death is answered by a respawn"
    );
    assert_eq!(stats.quarantined, exp.panics);
    assert_eq!(
        stats.live_workers, workers,
        "the pool is back to full strength"
    );
    // The faulty events crash before any delivery (single subscription),
    // so at-least-once recovery cannot duplicate notifications here.
    assert_eq!(stats.notifications, exp.delivered);
    assert_eq!(rx.try_iter().count() as u64, exp.delivered);
    broker.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "chaos test must stay within its time budget"
    );
}
