//! Cross-matcher behavioural contracts: the four Table 1 approaches must
//! relate to each other the way §1.2 describes.

use std::sync::Arc;
use tep::prelude::*;

struct Stack {
    exact: ExactMatcher,
    rewriting: RewritingMatcher,
    non_thematic: ProbabilisticMatcher<EsaMeasure>,
    thematic: ProbabilisticMatcher<ThematicEsaMeasure>,
}

fn stack() -> Stack {
    let corpus = Corpus::generate(&CorpusConfig::small().with_num_docs(900));
    let space = Arc::new(DistributionalSpace::new(InvertedIndex::build(&corpus)));
    let pvsm = Arc::new(ParametricVectorSpace::new((*space).clone()));
    Stack {
        exact: ExactMatcher::new(),
        rewriting: RewritingMatcher::new(Arc::new(Thesaurus::eurovoc_like())),
        non_thematic: ProbabilisticMatcher::new(EsaMeasure::new(space), MatcherConfig::top1()),
        thematic: ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm), MatcherConfig::top1()),
    }
}

#[test]
fn every_matcher_accepts_a_verbatim_match() {
    let s = stack();
    let event = parse_event("{type: increased energy consumption event, device: laptop}").unwrap();
    let subscription =
        parse_subscription("{type~= increased energy consumption event~, device~= laptop~}")
            .unwrap();
    for (name, score) in [
        ("exact", 1.0),
        ("rewriting", 1.0),
        ("non-thematic", 1.0),
        ("thematic", 1.0),
    ] {
        let got = match name {
            "exact" => {
                // The exact matcher ignores ~, so verbatim equality holds.
                s.exact.match_event(&subscription, &event).score()
            }
            "rewriting" => s.rewriting.match_event(&subscription, &event).score(),
            "non-thematic" => s.non_thematic.match_event(&subscription, &event).score(),
            _ => s.thematic.match_event(&subscription, &event).score(),
        };
        assert!(
            (got - score).abs() < 1e-9,
            "{name}: verbatim match scored {got}"
        );
    }
}

#[test]
fn recall_strictly_widens_from_exact_to_approximate() {
    // §1.2: content-based < concept-based < approximate in what they can
    // match. A synonym inside the knowledge base is caught by rewriting
    // and approximate but not exact; a paraphrase outside the knowledge
    // base is caught only by the approximate matchers.
    let s = stack();
    let subscription = parse_subscription("{device~= laptop~}").unwrap();

    // In-thesaurus synonym: 'notebook' is an alternate of 'laptop'.
    let synonym = parse_event("{device: notebook}").unwrap();
    assert_eq!(s.exact.match_event(&subscription, &synonym).score(), 0.0);
    assert_eq!(
        s.rewriting.match_event(&subscription, &synonym).score(),
        1.0
    );
    assert!(s.non_thematic.match_event(&subscription, &synonym).score() > 0.0);

    // Out-of-thesaurus but distributionally related: 'computer' is not in
    // laptop's synonym ring (only a related concept's preferred term is),
    // so pick a term with no direct link at all: 'workstation' is an
    // alternate of computer, reachable distributionally.
    let related = parse_event("{device: workstation}").unwrap();
    assert_eq!(s.exact.match_event(&subscription, &related).score(), 0.0);
    let approx = s.non_thematic.match_event(&subscription, &related).score();
    assert!(approx > 0.0, "distributional matcher must see the relation");
}

#[test]
fn approximate_scores_rank_by_semantic_closeness() {
    let s = stack();
    let subscription = parse_subscription("{device~= laptop~}").unwrap();
    let synonym = parse_event("{device: notebook}").unwrap();
    let cousin = parse_event("{device: refrigerator}").unwrap();
    let syn = s.non_thematic.match_event(&subscription, &synonym).score();
    let far = s.non_thematic.match_event(&subscription, &cousin).score();
    assert!(
        syn > far,
        "synonym {syn} must outrank a same-domain non-synonym {far}"
    );
}

#[test]
fn thematic_and_non_thematic_agree_without_themes() {
    // With empty themes the PVSM is the identity, so both probabilistic
    // matchers must produce identical scores.
    let s = stack();
    let subscription =
        parse_subscription("{type~= increased energy usage event~, device~= laptop~}").unwrap();
    let event = parse_event(
        "{type: increased energy consumption event, device: computer, office: room 112}",
    )
    .unwrap();
    let a = s.non_thematic.match_event(&subscription, &event).score();
    let b = s.thematic.match_event(&subscription, &event).score();
    assert!(
        (a - b).abs() < 1e-6,
        "non-thematic {a} vs thematic-empty {b}"
    );
}

#[test]
fn mappings_are_injective_for_all_probabilistic_matchers() {
    let s = stack();
    let subscription = parse_subscription("{device~= laptop~, machine~= computer~}").unwrap();
    let event = parse_event("{device: notebook, machine: workstation, extra: desk 101a}").unwrap();
    for result in [
        s.non_thematic.match_event(&subscription, &event),
        s.thematic.match_event(&subscription, &event),
    ] {
        if let Some(m) = result.best() {
            let t0 = m.tuple_of(0).unwrap();
            let t1 = m.tuple_of(1).unwrap();
            assert_ne!(t0, t1, "mapping must not reuse a tuple");
        }
    }
}
