//! The supervised broker runtime surviving a misbehaving matcher: seeded
//! panic injection, per-match isolation, quarantine to the dead-letter
//! queue, and an ingress overload policy — all observable through
//! `BrokerStats`.
//!
//! Run with:
//!
//! ```text
//! cargo run --example fault_tolerance --release
//! ```

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Injected panics are part of the demo; keep their backtraces out of
    // the output (real faults still print normally).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected matcher fault"));
        if !injected {
            default_hook(info);
        }
    }));

    // A matcher that panics on ~2% of events and dawdles on ~1%,
    // deterministically per event content.
    let matcher = Arc::new(FaultInjectingMatcher::new(
        ExactMatcher::new(),
        FaultConfig::none(2014)
            .with_panic_rate(0.02)
            .with_latency(0.01, Duration::from_micros(300)),
    ));

    let config = BrokerConfig {
        // The subscriber drains only at the end, so the channel must hold
        // the whole run — otherwise DropNewest sheds the overflow.
        notification_capacity: 8192,
        ..BrokerConfig::default()
            .with_workers(4)
            .with_max_match_attempts(1)
            .with_publish_policy(PublishPolicy::Timeout(Duration::from_millis(100)))
    };
    let broker = Broker::start(Arc::clone(&matcher), config);
    let (_, rx) = broker.subscribe(parse_subscription("{kind= reading}")?)?;

    let total = 5_000;
    let mut faulty = 0;
    for i in 0..total {
        let event = parse_event(&format!(
            "{{kind: reading, sensor: s{}, seq: n{i}}}",
            i % 64
        ))?;
        if matcher.fault_for(&event) == Fault::Panic {
            faulty += 1;
        }
        broker.publish(event)?;
    }
    broker.flush_timeout(Duration::from_secs(10))?;

    let stats = broker.stats();
    let delivered = rx.try_iter().count() as u64;
    println!("published            {}", stats.published);
    println!("processed            {}", stats.processed);
    println!("delivered            {delivered}");
    println!("injected panics      {faulty}");
    println!("worker panics caught {}", stats.worker_panics);
    println!("quarantined          {}", stats.quarantined);
    println!("workers respawned    {}", stats.workers_respawned);
    println!("live workers         {}", stats.live_workers);
    let letters = broker.dead_letters();
    println!(
        "dead letters held    {} (capacity-bounded; first seq = {})",
        letters.len(),
        letters
            .first()
            .and_then(|d| d.event.value_of("seq"))
            .unwrap_or("-")
    );

    assert_eq!(stats.processed, stats.published, "liveness: nothing lost");
    assert_eq!(
        stats.worker_panics, faulty,
        "every injected panic was caught"
    );
    assert_eq!(
        stats.quarantined, faulty,
        "every faulty event was quarantined"
    );
    assert_eq!(
        delivered,
        stats.published - faulty,
        "every clean event was delivered"
    );
    println!("\nall faults contained; no worker died, no clean event was lost.");
    broker.shutdown();
    Ok(())
}
