//! Smart-city scenario (the paper's §2.1 motivation): Alice, in the town
//! hall planning department, wants the energy usage of street lights
//! during peak electricity usage — but the sensors in each area come from
//! different manufacturers and describe the same thing with different
//! vocabularies.
//!
//! A single thematic subscription replaces the "large set of rules with
//! all possible variations of semantics" the IT department would
//! otherwise maintain. Events flow through the pub/sub broker; Alice's
//! subscriber receives notifications with match scores and mappings.
//!
//! Run with:
//!
//! ```text
//! cargo run --example smart_city --release
//! ```

use std::sync::Arc;
use std::time::Duration;
use tep::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the semantic substrate ...");
    let corpus = Corpus::generate(&CorpusConfig::standard());
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    let matcher = Arc::new(ProbabilisticMatcher::new(
        ThematicEsaMeasure::new(pvsm),
        MatcherConfig::top1(),
    ));

    // The broker: two matching workers, delivery above a score threshold.
    let broker = Broker::start(
        matcher,
        BrokerConfig::default()
            .with_workers(2)
            .with_delivery_threshold(0.30),
    );

    // Alice's single approximate subscription — no agreement needed with
    // any sensor manufacturer. Theme tags clarify her interest.
    let alice = parse_subscription(
        "({energy policy, public lighting, urban geography}, \
         {type~= street light energy usage event~, period~= peak electricity usage~})",
    )?;
    let (alice_id, alice_rx) = broker.subscribe(alice)?;
    println!("alice subscribed as {alice_id}");

    // Heterogeneous events from three manufacturers in different areas.
    // Each uses its own vocabulary for the same phenomenon.
    let events = [
        // Manufacturer A: the terms Alice happens to use.
        "({energy metering, building energy}, \
         {type: street light energy usage event, period: peak electricity usage, \
          street: main street, city: santander})",
        // Manufacturer B: 'street lamp power consumption', 'consumption peak'.
        "({energy metering, power generation}, \
         {type: street lamp power consumption event, period: consumption peak, \
          street: quay street, city: santander})",
        // Manufacturer C: 'public lighting electricity usage', 'peak demand'.
        "({energy efficiency, energy demand}, \
         {type: public lighting electricity usage event, period: peak demand, \
          street: college road, city: galway})",
        // An unrelated parking event that must NOT reach Alice.
        "({land transport, parking policy}, \
         {type: parking space occupied event, street: shop street, city: santander})",
        // An unrelated air-quality event that must NOT reach Alice.
        "({air quality, weather monitoring}, \
         {type: ozone reading event, measurement unit: micrograms per cubic metre, \
          zone: city centre, city: santander})",
    ];
    for text in events {
        broker.publish(parse_event(text)?)?;
    }
    broker.flush_timeout(Duration::from_secs(30))?;

    println!("\nnotifications delivered to alice:");
    let mut delivered = 0;
    while let Ok(n) = alice_rx.try_recv() {
        delivered += 1;
        println!(
            "  score {:.3}  type = {}",
            n.score(),
            n.event.value_of("type").unwrap_or("?")
        );
    }
    let stats = broker.stats();
    println!(
        "\nbroker stats: {} events processed, {} match tests, {} notifications",
        stats.processed, stats.match_tests, stats.notifications
    );
    println!(
        "→ one thematic subscription covered {delivered} vocabulary variants; \
         a content-based broker would have needed one rule per variant."
    );
    assert!(
        delivered >= 2,
        "the semantically equivalent events must reach alice"
    );
    assert!(delivered <= 3, "unrelated events must not reach alice");
    broker.shutdown();
    Ok(())
}
