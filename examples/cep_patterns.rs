//! Complex-event patterns over uncertain thematic matches — the paper's
//! §2.1 scenario taken one step further: Alice wants street-light energy
//! events **during** peak electricity usage, i.e. a *sequence* of two
//! approximate matches inside a time window, across sensors that never
//! agreed on vocabulary.
//!
//! Run with:
//!
//! ```text
//! cargo run --example cep_patterns --release
//! ```

use std::sync::Arc;
use tep::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the semantic substrate ...");
    let corpus = Corpus::generate(&CorpusConfig::standard());
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
        InvertedIndex::build(&corpus),
    )));
    let matcher = ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm), MatcherConfig::top1());

    // Pattern: a consumption-peak announcement followed, within 30 time
    // units, by a street-light energy event — both approximate.
    let peak = parse_subscription(
        "({energy demand, power generation}, {type~= consumption peak event~})",
    )?;
    let street_light = parse_subscription(
        "({energy policy, public lighting}, {type~= street light energy usage event~})",
    )?;
    // Leaf threshold: unrelated-but-known term pairs bottom out near the
    // relatedness floor (~0.41); genuine paraphrases of these phrases land
    // around 0.55-0.75, so 0.52 separates them cleanly.
    let mut engine = CepEngine::new(matcher, 0.52);
    let id = engine.register(Pattern::sequence(
        [Pattern::single(peak), Pattern::single(street_light)],
        30,
    ));
    println!("registered pattern {id}: peak → street-light energy, within 30\n");

    // The stream, in the vendors' own words.
    let stream = [
        (
            5u64,
            "({energy policy}, {type: ozone reading event, zone: city centre})",
        ),
        // The grid operator announces a peak — phrased as 'peak demand'.
        (
            10,
            "({energy demand}, {type: peak demand event, area: city centre})",
        ),
        // A street light reports energy — phrased as 'street lamp power consumption'.
        (
            18,
            "({energy metering, building energy}, \
              {type: street lamp power consumption event, street: main street})",
        ),
        // Another, but far outside the window.
        (
            90,
            "({energy metering}, {type: street lamp power consumption event, street: quay street})",
        ),
    ];

    let mut total = 0usize;
    for (ts, text) in stream {
        let detections = engine.feed(&Timestamped::new(parse_event(text)?, ts));
        total += detections.len();
        for d in &detections {
            println!(
                "t={ts}: COMPLEX DETECTION (confidence {:.3})",
                d.probability
            );
            for (ets, e) in &d.events {
                println!("    t={ets}  {}", e.value_of("type").unwrap_or("?"));
            }
        }
        if detections.is_empty() {
            println!("t={ts}: no detection");
        }
    }
    assert_eq!(
        total, 1,
        "exactly the in-window peak→street-light pair must fire"
    );
    Ok(())
}
