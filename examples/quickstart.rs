//! Quickstart: build the distributional substrate, create a thematic
//! matcher, and match the paper's §3 running example — an *increased
//! energy consumption* event against an *increased energy usage*
//! subscription that never agreed on vocabulary.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use std::sync::Arc;
use tep::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The distributional substrate. In a real deployment this is a
    //    large text corpus (the paper indexes Wikipedia); here we generate
    //    the built-in synthetic corpus and index it.
    println!("building corpus and index ...");
    let corpus = Corpus::generate(&CorpusConfig::standard());
    let index = InvertedIndex::build(&corpus);
    println!(
        "  {} documents, {} distinct words",
        corpus.len(),
        index.vocabulary_len()
    );
    let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(index)));

    // 2. A thematic matcher in top-1 mode.
    let matcher = ProbabilisticMatcher::new(
        ThematicEsaMeasure::new(Arc::clone(&pvsm)),
        MatcherConfig::top1(),
    );

    // 3. The paper's §3 example event and subscription (different words,
    //    same meaning), with theme tags describing their domains.
    let event = parse_event(
        "({energy policy, building energy}, \
         {type: increased energy consumption event, \
          measurement unit: kilowatt hour, device: computer, office: room 112})",
    )?;
    let subscription = parse_subscription(
        "({energy policy, power generation}, \
         {type= increased energy usage event~, device~= laptop~, office= room 112})",
    )?;

    println!("\nevent:        {event}");
    println!("subscription: {subscription}");
    println!(
        "degree of approximation: {}",
        subscription.degree_of_approximation()
    );

    // 4. Match. The result carries the top-1 mapping σ* with both
    //    probability spaces (per-correspondence and per-mapping).
    let result = matcher.match_event(&subscription, &event);
    let mapping = result.best().expect("the example must match");
    println!("\ntop-1 mapping σ* (score {:.4}):", mapping.score());
    for c in mapping.correspondences() {
        let p = &subscription.predicates()[c.predicate];
        let t = &event.tuples()[c.tuple];
        println!(
            "  {p}  ↔  {t}   (similarity {:.4}, probability {:.4})",
            c.similarity, c.probability
        );
    }

    // 5. Compare with a semantically unrelated event: the matcher must
    //    rank it far below.
    let unrelated = parse_event(
        "({land transport, road traffic}, \
         {type: parking space occupied event, street: quay street, city: santander})",
    )?;
    let unrelated_score = matcher.match_event(&subscription, &unrelated).score();
    println!(
        "\nscore against an unrelated parking event: {unrelated_score:.6} \
         (vs {:.4} for the energy event)",
        mapping.score()
    );
    assert!(mapping.score() > unrelated_score);
    Ok(())
}
