//! Theme tuning: sweep event/subscription theme sizes on a miniature
//! workload and print a small effectiveness/throughput grid — a
//! laptop-scale preview of the paper's Figures 7 and 9. The full
//! reproduction lives in `cargo run -p tep-bench --bin repro`.
//!
//! Run with:
//!
//! ```text
//! cargo run --example theme_tuning --release
//! ```

use tep_eval::ThemeSampler;
use tep_eval::{run_sub_experiment, EvalConfig, MatcherStack, ThemeCombination, Workload};

fn main() {
    let cfg = EvalConfig::tiny();
    println!(
        "workload: {} events, {} subscriptions",
        cfg.max_expanded_events, cfg.num_subscriptions
    );
    let stack = MatcherStack::build(&cfg);
    let workload = Workload::generate(&cfg);

    // Baseline: the non-thematic matcher with no tags.
    let no_theme = ThemeCombination {
        event_tags: vec![],
        subscription_tags: vec![],
    };
    let base = run_sub_experiment(&stack.non_thematic(), &workload, &no_theme);
    println!(
        "baseline (non-thematic): F1 {:.1}%  {:.0} events/sec\n",
        base.f1() * 100.0,
        base.throughput
    );

    let matcher = stack.thematic();
    let mut sampler = ThemeSampler::new(stack.thesaurus(), cfg.seed);
    let sizes = [1usize, 3, 6, 12, 24];

    println!("thematic F1% (rows: subscription theme size, cols: event theme size)");
    print!("  ss\\es |");
    for es in sizes {
        print!(" {es:>6}");
    }
    println!();
    for ss in sizes {
        print!("  {ss:>5} |");
        for es in sizes {
            let combo = sampler.sample(es, ss);
            let r = run_sub_experiment(&matcher, &workload, &combo);
            let mark = if r.f1() > base.f1() { '+' } else { ' ' };
            print!(" {mark}{:>4.1}%", r.f1() * 100.0);
            stack.clear_caches();
        }
        println!();
    }

    println!("\nthematic throughput (events/sec), same grid");
    print!("  ss\\es |");
    for es in sizes {
        print!(" {es:>6}");
    }
    println!();
    for ss in sizes {
        print!("  {ss:>5} |");
        for es in sizes {
            let combo = sampler.sample(es, ss);
            let r = run_sub_experiment(&matcher, &workload, &combo);
            print!(" {:>6.0}", r.throughput);
            stack.clear_caches();
        }
        println!();
    }
    println!("\n'+' marks cells whose F1 beats the non-thematic baseline.");
    println!("guideline (paper §5.3.3): few tags for events, more for subscriptions.");
}
