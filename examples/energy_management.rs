//! Enterprise energy management (the paper's LEI / Linked Energy
//! Intelligence context): monitor appliance-level energy consumption in a
//! smart building where meters from different vendors emit heterogeneous
//! events, and compare what the four approaches of Table 1 each catch.
//!
//! Run with:
//!
//! ```text
//! cargo run --example energy_management --release
//! ```

use std::sync::Arc;
use tep::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the semantic substrate ...");
    let corpus = Corpus::generate(&CorpusConfig::standard());
    let space = Arc::new(DistributionalSpace::new(InvertedIndex::build(&corpus)));
    let pvsm = Arc::new(ParametricVectorSpace::new((*space).clone()));
    let thesaurus = Arc::new(Thesaurus::eurovoc_like());

    // The four approaches of Table 1.
    let exact = ExactMatcher::new();
    let rewriting = RewritingMatcher::new(Arc::clone(&thesaurus));
    let non_thematic =
        ProbabilisticMatcher::new(EsaMeasure::new(Arc::clone(&space)), MatcherConfig::top1());
    let thematic = ProbabilisticMatcher::new(
        ThematicEsaMeasure::new(Arc::clone(&pvsm)),
        MatcherConfig::top_k(3),
    );

    // The facility manager's subscription: laptop-class devices consuming
    // too much power in room 112 — exact on the room, approximate on the
    // rest.
    let subscription = parse_subscription(
        "({energy metering, building energy, information technology}, \
         {type= increased energy usage event~, device~= laptop~, room= room 112})",
    )?;
    println!("subscription: {subscription}\n");

    // Events from three meter vendors.
    let events = vec![
        parse_event(
            "({energy metering, building energy}, \
             {type: increased energy usage event, device: laptop, room: room 112})",
        )?,
        parse_event(
            "({energy metering, building energy}, \
             {type: increased energy consumption event, device: computer, room: room 112})",
        )?,
        parse_event(
            "({building energy, energy demand}, \
             {type: increased electricity usage event, device: notebook computer, room: room 112})",
        )?,
        // Same vocabulary but the wrong room: the exact predicate must veto.
        parse_event(
            "({energy metering, building energy}, \
             {type: increased energy usage event, device: laptop, room: room 204})",
        )?,
    ];

    println!(
        "{:<55} {:>8} {:>10} {:>13} {:>9}",
        "event", "exact", "rewriting", "non-thematic", "thematic"
    );
    for e in &events {
        let brief = format!(
            "{} / {} / {}",
            e.value_of("type").unwrap_or("?"),
            e.value_of("device").unwrap_or("?"),
            e.value_of("room").unwrap_or("?")
        );
        println!(
            "{:<55} {:>8.3} {:>10.3} {:>13.3} {:>9.3}",
            brief,
            exact.match_event(&subscription, e).score(),
            rewriting.match_event(&subscription, e).score(),
            non_thematic.match_event(&subscription, e).score(),
            thematic.match_event(&subscription, e).score(),
        );
    }

    // The thematic matcher in top-k mode also reports alternative
    // mappings with their probabilities — input for a downstream
    // complex-event-processing stage (paper §6.2).
    let result = thematic.match_event(&subscription, &events[1]);
    println!(
        "\ntop-{} mappings for the second event:",
        result.mappings().len()
    );
    for (i, m) in result.mappings().iter().enumerate() {
        println!("  #{i}: {m}");
    }

    // Sanity: the exact matcher misses every variant it did not agree on,
    // while the thematic matcher ranks the wrong-room event at zero.
    assert_eq!(exact.match_event(&subscription, &events[1]).score(), 0.0);
    assert_eq!(thematic.match_event(&subscription, &events[3]).score(), 0.0);
    assert!(thematic.match_event(&subscription, &events[1]).score() > 0.0);
    Ok(())
}
