#!/usr/bin/env sh
# Perf-regression gate. Run from the repo root after a bench run has
# produced a fresh BENCH_throughput.json:
#
#   sh ci/perf_gate.sh [baseline] [current]
#
# Compares the fresh document against the committed baseline
# (ci/perf_baseline.json) and exits non-zero if any scenario's
# throughput drops more than 25% or any stage's p99 more than doubles.
# Thresholds can be loosened for noisy runners via the environment:
#
#   PERF_GATE_MAX_DROP=0.40 PERF_GATE_MAX_P99_GROWTH=3.0 sh ci/perf_gate.sh
#
# To refresh the baseline after an intentional perf change:
#
#   cargo run -p tep-bench --release --offline --bin probe -- \
#       bench --out ci/perf_baseline.json --prom /dev/null
set -eu

BASELINE="${1:-ci/perf_baseline.json}"
CURRENT="${2:-BENCH_throughput.json}"

if [ -x target/release/probe ]; then
    target/release/probe perf-gate --baseline "$BASELINE" --current "$CURRENT"
else
    cargo run -p tep-bench --release --offline --bin probe -- \
        perf-gate --baseline "$BASELINE" --current "$CURRENT"
fi
