#!/usr/bin/env sh
# Perf- and quality-regression gates. Run from the repo root after a
# bench run has produced fresh BENCH_throughput.json and
# BENCH_quality.json documents:
#
#   sh ci/perf_gate.sh [baseline] [current]
#
# First compares the fresh throughput document against the committed
# baseline (ci/perf_baseline.json): exits non-zero if any scenario's
# throughput drops more than 25%, any stage's p99 more than doubles, or
# any scenario's queue_wait p50 exceeds the absolute 5 ms ceiling
# (PERF_GATE_MAX_QW_P50_NS overrides; 0 disables).
# Then compares the fresh quality document against
# ci/quality_baseline.json: exits non-zero if any sufficiently-sampled
# scenario's live F1 drops more than 10 points below baseline, or the
# live F1 disagrees with the offline eval F1 beyond its own confidence
# interval. Finally compares the fresh subscription-aggregation document
# (BENCH_subindex.json) against ci/subindex_baseline.json: exits non-zero
# if the million-subscriber population shrank, its hash-consed entry
# count drifted, its throughput dropped more than 25%, or the
# large/small throughput ratio fell below the absolute 0.5 floor
# (SUBINDEX_GATE_MAX_DROP / SUBINDEX_GATE_MIN_RATIO override).
# Last runs the self-contained observability gate (probe obs-gate): the
# flight recorder must stay within 1% of recorder-off throughput at its
# production defaults, allocate nothing across a steady-state tick loop,
# and freeze well-formed diagnostic bundles for an injected worker panic
# and a forced Critical load state. It writes BENCH_obsgate.json and the
# chaos bundle BENCH_diag_bundle.json (OBS_GATE_MAX_OVERHEAD /
# OBS_GATE_MAX_STEADY_ALLOCS / OBS_GATE_TRIALS override).
# Finally runs the self-contained cost-attribution gate (probe
# cost-gate) against the committed ci/cost_baseline.json: sampling cost
# attribution at its default 1-in-64 rate must stay within 1% of
# attribution-off throughput, the k=1 charge path may allocate nothing
# beyond the attribution-off loop, and attributed totals scaled by k
# must reconcile with the global match+deliver stage histograms (exactly
# at k=1). It writes BENCH_costs.json (COST_GATE_MAX_OVERHEAD /
# COST_GATE_MAX_EXTRA_ALLOCS / COST_GATE_MAX_RECONCILE_ERROR /
# COST_GATE_TRIALS override).
# Thresholds can be loosened for noisy runners via the environment:
#
#   PERF_GATE_MAX_DROP=0.40 PERF_GATE_MAX_P99_GROWTH=3.0 \
#   QUALITY_GATE_MAX_F1_DROP=0.15 QUALITY_GATE_MIN_SAMPLES=150 \
#   SUBINDEX_GATE_MAX_DROP=0.50 OBS_GATE_MAX_OVERHEAD=0.05 \
#   COST_GATE_MAX_OVERHEAD=0.05 \
#       sh ci/perf_gate.sh
#
# To refresh the baselines after an intentional change:
#
#   cargo run -p tep-bench --release --offline --bin probe -- \
#       bench --out ci/perf_baseline.json --prom /dev/null
#   cp BENCH_quality.json ci/quality_baseline.json
#   cp BENCH_subindex.json ci/subindex_baseline.json
set -eu

BASELINE="${1:-ci/perf_baseline.json}"
CURRENT="${2:-BENCH_throughput.json}"
QUALITY_BASELINE="${QUALITY_BASELINE:-ci/quality_baseline.json}"
QUALITY_CURRENT="${QUALITY_CURRENT:-BENCH_quality.json}"
SUBINDEX_BASELINE="${SUBINDEX_BASELINE:-ci/subindex_baseline.json}"
SUBINDEX_CURRENT="${SUBINDEX_CURRENT:-BENCH_subindex.json}"
OBSGATE_OUT="${OBSGATE_OUT:-BENCH_obsgate.json}"
OBSGATE_BUNDLE="${OBSGATE_BUNDLE:-BENCH_diag_bundle.json}"
COSTGATE_BASELINE="${COSTGATE_BASELINE:-ci/cost_baseline.json}"
COSTGATE_OUT="${COSTGATE_OUT:-BENCH_costs.json}"

if [ -x target/release/probe ]; then
    PROBE=target/release/probe
else
    PROBE="cargo run -p tep-bench --release --offline --bin probe --"
fi

$PROBE perf-gate --baseline "$BASELINE" --current "$CURRENT"
$PROBE quality-gate --baseline "$QUALITY_BASELINE" --current "$QUALITY_CURRENT"
$PROBE subindex-gate --baseline "$SUBINDEX_BASELINE" --current "$SUBINDEX_CURRENT"
$PROBE obs-gate --out "$OBSGATE_OUT" --bundle "$OBSGATE_BUNDLE"
$PROBE cost-gate --baseline "$COSTGATE_BASELINE" --out "$COSTGATE_OUT"
