#!/usr/bin/env sh
# Repository quality gate. Run from the repo root:
#
#   sh ci/check.sh
#
# Mirrors .github/workflows/ci.yml so the gate is reproducible offline.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> bench smoke (BENCH_throughput.json + BENCH_metrics.prom + alloc/explain/span dumps)"
cargo run -p tep-bench --release --offline --bin probe -- \
    bench --out BENCH_throughput.json --prom BENCH_metrics.prom --alloc

echo "==> perf gate (vs ci/perf_baseline.json)"
# CI shared runners are noisy; the committed thresholds assume bare
# metal, so give the shared-runner path extra headroom by default.
PERF_GATE_MAX_DROP="${PERF_GATE_MAX_DROP:-0.25}" \
PERF_GATE_MAX_P99_GROWTH="${PERF_GATE_MAX_P99_GROWTH:-2.0}" \
SUBINDEX_GATE_MIN_RATIO="${SUBINDEX_GATE_MIN_RATIO:-0.30}" \
    sh ci/perf_gate.sh

echo "All checks passed."
