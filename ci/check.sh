#!/usr/bin/env sh
# Repository quality gate. Run from the repo root:
#
#   sh ci/check.sh
#
# Mirrors .github/workflows/ci.yml so the gate is reproducible offline.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> bench smoke (BENCH_throughput.json + BENCH_metrics.prom)"
cargo run -p tep-bench --release --offline --bin probe -- \
    bench --out BENCH_throughput.json --prom BENCH_metrics.prom

echo "All checks passed."
