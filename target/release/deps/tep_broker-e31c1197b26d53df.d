/root/repo/target/release/deps/tep_broker-e31c1197b26d53df.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

/root/repo/target/release/deps/libtep_broker-e31c1197b26d53df.rlib: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

/root/repo/target/release/deps/libtep_broker-e31c1197b26d53df.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/config.rs:
crates/broker/src/notification.rs:
crates/broker/src/stats.rs:
crates/broker/src/supervisor.rs:
