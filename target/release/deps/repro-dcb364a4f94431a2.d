/root/repo/target/release/deps/repro-dcb364a4f94431a2.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-dcb364a4f94431a2: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
