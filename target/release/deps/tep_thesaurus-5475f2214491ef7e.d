/root/repo/target/release/deps/tep_thesaurus-5475f2214491ef7e.d: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs

/root/repo/target/release/deps/libtep_thesaurus-5475f2214491ef7e.rlib: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs

/root/repo/target/release/deps/libtep_thesaurus-5475f2214491ef7e.rmeta: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs

crates/thesaurus/src/lib.rs:
crates/thesaurus/src/builder.rs:
crates/thesaurus/src/concept.rs:
crates/thesaurus/src/domain.rs:
crates/thesaurus/src/error.rs:
crates/thesaurus/src/eurovoc.rs:
crates/thesaurus/src/term.rs:
crates/thesaurus/src/thesaurus.rs:
