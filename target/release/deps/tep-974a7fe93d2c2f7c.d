/root/repo/target/release/deps/tep-974a7fe93d2c2f7c.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libtep-974a7fe93d2c2f7c.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libtep-974a7fe93d2c2f7c.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
