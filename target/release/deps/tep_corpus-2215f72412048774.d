/root/repo/target/release/deps/tep_corpus-2215f72412048774.d: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

/root/repo/target/release/deps/libtep_corpus-2215f72412048774.rlib: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

/root/repo/target/release/deps/libtep_corpus-2215f72412048774.rmeta: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

crates/corpus/src/lib.rs:
crates/corpus/src/config.rs:
crates/corpus/src/corpus.rs:
crates/corpus/src/document.rs:
crates/corpus/src/filler.rs:
crates/corpus/src/generator.rs:
