/root/repo/target/release/deps/tep_events-16aa9859e23440d6.d: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

/root/repo/target/release/deps/libtep_events-16aa9859e23440d6.rlib: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

/root/repo/target/release/deps/libtep_events-16aa9859e23440d6.rmeta: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

crates/events/src/lib.rs:
crates/events/src/error.rs:
crates/events/src/event.rs:
crates/events/src/operator.rs:
crates/events/src/parser.rs:
crates/events/src/predicate.rs:
crates/events/src/subscription.rs:
crates/events/src/tuple.rs:
