/root/repo/target/release/deps/probe-acc5d2e4e20bd115.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-acc5d2e4e20bd115: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
