/root/repo/target/release/deps/rand-28225bf89c95d179.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-28225bf89c95d179.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-28225bf89c95d179.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
