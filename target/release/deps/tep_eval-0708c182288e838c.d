/root/repo/target/release/deps/tep_eval-0708c182288e838c.d: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/baseline.rs crates/eval/src/experiments/cold_start.rs crates/eval/src/experiments/grid.rs crates/eval/src/experiments/prior_work.rs crates/eval/src/experiments/table1.rs crates/eval/src/experiments/tagging_modes.rs crates/eval/src/metrics.rs crates/eval/src/config.rs crates/eval/src/expansion.rs crates/eval/src/ground_truth.rs crates/eval/src/runner.rs crates/eval/src/seed.rs crates/eval/src/subscriptions.rs crates/eval/src/themes.rs crates/eval/src/workload.rs

/root/repo/target/release/deps/libtep_eval-0708c182288e838c.rlib: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/baseline.rs crates/eval/src/experiments/cold_start.rs crates/eval/src/experiments/grid.rs crates/eval/src/experiments/prior_work.rs crates/eval/src/experiments/table1.rs crates/eval/src/experiments/tagging_modes.rs crates/eval/src/metrics.rs crates/eval/src/config.rs crates/eval/src/expansion.rs crates/eval/src/ground_truth.rs crates/eval/src/runner.rs crates/eval/src/seed.rs crates/eval/src/subscriptions.rs crates/eval/src/themes.rs crates/eval/src/workload.rs

/root/repo/target/release/deps/libtep_eval-0708c182288e838c.rmeta: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/baseline.rs crates/eval/src/experiments/cold_start.rs crates/eval/src/experiments/grid.rs crates/eval/src/experiments/prior_work.rs crates/eval/src/experiments/table1.rs crates/eval/src/experiments/tagging_modes.rs crates/eval/src/metrics.rs crates/eval/src/config.rs crates/eval/src/expansion.rs crates/eval/src/ground_truth.rs crates/eval/src/runner.rs crates/eval/src/seed.rs crates/eval/src/subscriptions.rs crates/eval/src/themes.rs crates/eval/src/workload.rs

crates/eval/src/lib.rs:
crates/eval/src/datasets.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/baseline.rs:
crates/eval/src/experiments/cold_start.rs:
crates/eval/src/experiments/grid.rs:
crates/eval/src/experiments/prior_work.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/experiments/tagging_modes.rs:
crates/eval/src/metrics.rs:
crates/eval/src/config.rs:
crates/eval/src/expansion.rs:
crates/eval/src/ground_truth.rs:
crates/eval/src/runner.rs:
crates/eval/src/seed.rs:
crates/eval/src/subscriptions.rs:
crates/eval/src/themes.rs:
crates/eval/src/workload.rs:
