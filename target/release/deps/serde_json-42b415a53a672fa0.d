/root/repo/target/release/deps/serde_json-42b415a53a672fa0.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-42b415a53a672fa0.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-42b415a53a672fa0.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
