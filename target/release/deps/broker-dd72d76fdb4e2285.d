/root/repo/target/release/deps/broker-dd72d76fdb4e2285.d: crates/bench/benches/broker.rs

/root/repo/target/release/deps/broker-dd72d76fdb4e2285: crates/bench/benches/broker.rs

crates/bench/benches/broker.rs:
