/root/repo/target/release/deps/criterion-8a39b332c9ea758e.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8a39b332c9ea758e.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8a39b332c9ea758e.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
