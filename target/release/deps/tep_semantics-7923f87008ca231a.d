/root/repo/target/release/deps/tep_semantics-7923f87008ca231a.d: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

/root/repo/target/release/deps/libtep_semantics-7923f87008ca231a.rlib: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

/root/repo/target/release/deps/libtep_semantics-7923f87008ca231a.rmeta: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

crates/semantics/src/lib.rs:
crates/semantics/src/measure.rs:
crates/semantics/src/projection.rs:
crates/semantics/src/pvsm.rs:
crates/semantics/src/space.rs:
crates/semantics/src/sparse.rs:
crates/semantics/src/theme.rs:
