/root/repo/target/release/deps/proptest-4b3fe06e82a70164.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4b3fe06e82a70164.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4b3fe06e82a70164.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
