/root/repo/target/release/deps/tep_index-5f21e8740874b2cc.d: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

/root/repo/target/release/deps/libtep_index-5f21e8740874b2cc.rlib: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

/root/repo/target/release/deps/libtep_index-5f21e8740874b2cc.rmeta: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

crates/index/src/lib.rs:
crates/index/src/inverted.rs:
crates/index/src/postings.rs:
crates/index/src/tokenizer.rs:
crates/index/src/vocab.rs:
