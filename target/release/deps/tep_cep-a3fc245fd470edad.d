/root/repo/target/release/deps/tep_cep-a3fc245fd470edad.d: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

/root/repo/target/release/deps/libtep_cep-a3fc245fd470edad.rlib: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

/root/repo/target/release/deps/libtep_cep-a3fc245fd470edad.rmeta: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

crates/cep/src/lib.rs:
crates/cep/src/engine.rs:
crates/cep/src/pattern.rs:
