/root/repo/target/release/deps/serde-147058c2f9251e22.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-147058c2f9251e22.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-147058c2f9251e22.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
