/root/repo/target/release/deps/tep_bench-9a99b3209d623be7.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libtep_bench-9a99b3209d623be7.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libtep_bench-9a99b3209d623be7.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
