/root/repo/target/release/deps/tep_matcher-3aa17f75e867c94f.d: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs

/root/repo/target/release/deps/libtep_matcher-3aa17f75e867c94f.rlib: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs

/root/repo/target/release/deps/libtep_matcher-3aa17f75e867c94f.rmeta: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs

crates/matcher/src/lib.rs:
crates/matcher/src/assignment.rs:
crates/matcher/src/baselines.rs:
crates/matcher/src/config.rs:
crates/matcher/src/fault.rs:
crates/matcher/src/mapping.rs:
crates/matcher/src/matcher.rs:
crates/matcher/src/similarity.rs:
