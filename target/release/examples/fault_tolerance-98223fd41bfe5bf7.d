/root/repo/target/release/examples/fault_tolerance-98223fd41bfe5bf7.d: crates/core/../../examples/fault_tolerance.rs

/root/repo/target/release/examples/fault_tolerance-98223fd41bfe5bf7: crates/core/../../examples/fault_tolerance.rs

crates/core/../../examples/fault_tolerance.rs:
