/root/repo/target/release/examples/smart_city-61c142e9a1805305.d: crates/core/../../examples/smart_city.rs

/root/repo/target/release/examples/smart_city-61c142e9a1805305: crates/core/../../examples/smart_city.rs

crates/core/../../examples/smart_city.rs:
