/root/repo/target/debug/examples/theme_tuning-73c3bd6b3be98e8d.d: crates/core/../../examples/theme_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libtheme_tuning-73c3bd6b3be98e8d.rmeta: crates/core/../../examples/theme_tuning.rs Cargo.toml

crates/core/../../examples/theme_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
