/root/repo/target/debug/examples/fault_tolerance-67eb6f60f5d7f457.d: crates/core/../../examples/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/examples/libfault_tolerance-67eb6f60f5d7f457.rmeta: crates/core/../../examples/fault_tolerance.rs Cargo.toml

crates/core/../../examples/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
