/root/repo/target/debug/examples/theme_tuning-3aa37c9d99b51669.d: crates/core/../../examples/theme_tuning.rs

/root/repo/target/debug/examples/theme_tuning-3aa37c9d99b51669: crates/core/../../examples/theme_tuning.rs

crates/core/../../examples/theme_tuning.rs:
