/root/repo/target/debug/examples/cep_patterns-4b705fdfdf11d213.d: crates/core/../../examples/cep_patterns.rs

/root/repo/target/debug/examples/cep_patterns-4b705fdfdf11d213: crates/core/../../examples/cep_patterns.rs

crates/core/../../examples/cep_patterns.rs:
