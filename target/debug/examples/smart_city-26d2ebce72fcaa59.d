/root/repo/target/debug/examples/smart_city-26d2ebce72fcaa59.d: crates/core/../../examples/smart_city.rs

/root/repo/target/debug/examples/smart_city-26d2ebce72fcaa59: crates/core/../../examples/smart_city.rs

crates/core/../../examples/smart_city.rs:
