/root/repo/target/debug/examples/smart_city-778e58c31fb202fc.d: crates/core/../../examples/smart_city.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_city-778e58c31fb202fc.rmeta: crates/core/../../examples/smart_city.rs Cargo.toml

crates/core/../../examples/smart_city.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
