/root/repo/target/debug/examples/energy_management-8d8ec8793717ae06.d: crates/core/../../examples/energy_management.rs Cargo.toml

/root/repo/target/debug/examples/libenergy_management-8d8ec8793717ae06.rmeta: crates/core/../../examples/energy_management.rs Cargo.toml

crates/core/../../examples/energy_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
