/root/repo/target/debug/examples/cep_patterns-89c3d5bd70c5c37d.d: crates/core/../../examples/cep_patterns.rs Cargo.toml

/root/repo/target/debug/examples/libcep_patterns-89c3d5bd70c5c37d.rmeta: crates/core/../../examples/cep_patterns.rs Cargo.toml

crates/core/../../examples/cep_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
