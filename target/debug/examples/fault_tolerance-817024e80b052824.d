/root/repo/target/debug/examples/fault_tolerance-817024e80b052824.d: crates/core/../../examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-817024e80b052824: crates/core/../../examples/fault_tolerance.rs

crates/core/../../examples/fault_tolerance.rs:
