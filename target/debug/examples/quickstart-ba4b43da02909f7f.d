/root/repo/target/debug/examples/quickstart-ba4b43da02909f7f.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ba4b43da02909f7f.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
