/root/repo/target/debug/examples/energy_management-0907e9e2603d5bf3.d: crates/core/../../examples/energy_management.rs

/root/repo/target/debug/examples/energy_management-0907e9e2603d5bf3: crates/core/../../examples/energy_management.rs

crates/core/../../examples/energy_management.rs:
