/root/repo/target/debug/examples/quickstart-126d05c07b6c099d.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-126d05c07b6c099d: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
