/root/repo/target/debug/deps/tep_index-8998a6c6300d33c2.d: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

/root/repo/target/debug/deps/tep_index-8998a6c6300d33c2: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

crates/index/src/lib.rs:
crates/index/src/inverted.rs:
crates/index/src/postings.rs:
crates/index/src/tokenizer.rs:
crates/index/src/vocab.rs:
