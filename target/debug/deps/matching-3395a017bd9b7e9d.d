/root/repo/target/debug/deps/matching-3395a017bd9b7e9d.d: crates/bench/benches/matching.rs Cargo.toml

/root/repo/target/debug/deps/libmatching-3395a017bd9b7e9d.rmeta: crates/bench/benches/matching.rs Cargo.toml

crates/bench/benches/matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
