/root/repo/target/debug/deps/tep_cep-adf874b863908d3f.d: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs crates/cep/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libtep_cep-adf874b863908d3f.rmeta: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs crates/cep/src/proptests.rs Cargo.toml

crates/cep/src/lib.rs:
crates/cep/src/engine.rs:
crates/cep/src/pattern.rs:
crates/cep/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
