/root/repo/target/debug/deps/serde_json-b3c4878d30e78d39.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-b3c4878d30e78d39: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
