/root/repo/target/debug/deps/tep-6079ddbb3cf9617e.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtep-6079ddbb3cf9617e.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
