/root/repo/target/debug/deps/tep_semantics-fdd4d770962e8d2a.d: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs Cargo.toml

/root/repo/target/debug/deps/libtep_semantics-fdd4d770962e8d2a.rmeta: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs Cargo.toml

crates/semantics/src/lib.rs:
crates/semantics/src/measure.rs:
crates/semantics/src/projection.rs:
crates/semantics/src/pvsm.rs:
crates/semantics/src/space.rs:
crates/semantics/src/sparse.rs:
crates/semantics/src/theme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
