/root/repo/target/debug/deps/matching-3cd6e6e11937e369.d: crates/bench/benches/matching.rs

/root/repo/target/debug/deps/matching-3cd6e6e11937e369: crates/bench/benches/matching.rs

crates/bench/benches/matching.rs:
