/root/repo/target/debug/deps/tep_matcher-d1ed37e9fcb3d604.d: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs

/root/repo/target/debug/deps/libtep_matcher-d1ed37e9fcb3d604.rlib: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs

/root/repo/target/debug/deps/libtep_matcher-d1ed37e9fcb3d604.rmeta: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs

crates/matcher/src/lib.rs:
crates/matcher/src/assignment.rs:
crates/matcher/src/baselines.rs:
crates/matcher/src/config.rs:
crates/matcher/src/fault.rs:
crates/matcher/src/mapping.rs:
crates/matcher/src/matcher.rs:
crates/matcher/src/similarity.rs:
