/root/repo/target/debug/deps/ablation-8a8cc917e18106b1.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-8a8cc917e18106b1: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
