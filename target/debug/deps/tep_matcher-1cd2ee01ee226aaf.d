/root/repo/target/debug/deps/tep_matcher-1cd2ee01ee226aaf.d: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs Cargo.toml

/root/repo/target/debug/deps/libtep_matcher-1cd2ee01ee226aaf.rmeta: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs Cargo.toml

crates/matcher/src/lib.rs:
crates/matcher/src/assignment.rs:
crates/matcher/src/baselines.rs:
crates/matcher/src/config.rs:
crates/matcher/src/fault.rs:
crates/matcher/src/mapping.rs:
crates/matcher/src/matcher.rs:
crates/matcher/src/similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
