/root/repo/target/debug/deps/tep_cep-d4820778fa5d5eae.d: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

/root/repo/target/debug/deps/libtep_cep-d4820778fa5d5eae.rlib: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

/root/repo/target/debug/deps/libtep_cep-d4820778fa5d5eae.rmeta: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

crates/cep/src/lib.rs:
crates/cep/src/engine.rs:
crates/cep/src/pattern.rs:
