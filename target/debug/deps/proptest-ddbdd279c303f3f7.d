/root/repo/target/debug/deps/proptest-ddbdd279c303f3f7.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-ddbdd279c303f3f7: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
