/root/repo/target/debug/deps/matcher_cross_crate-318703829458bf41.d: crates/core/../../tests/matcher_cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libmatcher_cross_crate-318703829458bf41.rmeta: crates/core/../../tests/matcher_cross_crate.rs Cargo.toml

crates/core/../../tests/matcher_cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
