/root/repo/target/debug/deps/tep_corpus-a59e27a300e8d9c4.d: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

/root/repo/target/debug/deps/tep_corpus-a59e27a300e8d9c4: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

crates/corpus/src/lib.rs:
crates/corpus/src/config.rs:
crates/corpus/src/corpus.rs:
crates/corpus/src/document.rs:
crates/corpus/src/filler.rs:
crates/corpus/src/generator.rs:
