/root/repo/target/debug/deps/tep_bench-6495eb97312e25c7.d: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libtep_bench-6495eb97312e25c7.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
