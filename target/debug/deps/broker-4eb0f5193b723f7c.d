/root/repo/target/debug/deps/broker-4eb0f5193b723f7c.d: crates/bench/benches/broker.rs

/root/repo/target/debug/deps/broker-4eb0f5193b723f7c: crates/bench/benches/broker.rs

crates/bench/benches/broker.rs:
