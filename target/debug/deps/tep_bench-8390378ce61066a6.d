/root/repo/target/debug/deps/tep_bench-8390378ce61066a6.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/tep_bench-8390378ce61066a6: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
