/root/repo/target/debug/deps/tep_eval-5156d68455696c13.d: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/baseline.rs crates/eval/src/experiments/cold_start.rs crates/eval/src/experiments/grid.rs crates/eval/src/experiments/prior_work.rs crates/eval/src/experiments/table1.rs crates/eval/src/experiments/tagging_modes.rs crates/eval/src/metrics.rs crates/eval/src/config.rs crates/eval/src/expansion.rs crates/eval/src/ground_truth.rs crates/eval/src/runner.rs crates/eval/src/seed.rs crates/eval/src/subscriptions.rs crates/eval/src/themes.rs crates/eval/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libtep_eval-5156d68455696c13.rmeta: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/baseline.rs crates/eval/src/experiments/cold_start.rs crates/eval/src/experiments/grid.rs crates/eval/src/experiments/prior_work.rs crates/eval/src/experiments/table1.rs crates/eval/src/experiments/tagging_modes.rs crates/eval/src/metrics.rs crates/eval/src/config.rs crates/eval/src/expansion.rs crates/eval/src/ground_truth.rs crates/eval/src/runner.rs crates/eval/src/seed.rs crates/eval/src/subscriptions.rs crates/eval/src/themes.rs crates/eval/src/workload.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/datasets.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/baseline.rs:
crates/eval/src/experiments/cold_start.rs:
crates/eval/src/experiments/grid.rs:
crates/eval/src/experiments/prior_work.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/experiments/tagging_modes.rs:
crates/eval/src/metrics.rs:
crates/eval/src/config.rs:
crates/eval/src/expansion.rs:
crates/eval/src/ground_truth.rs:
crates/eval/src/runner.rs:
crates/eval/src/seed.rs:
crates/eval/src/subscriptions.rs:
crates/eval/src/themes.rs:
crates/eval/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
