/root/repo/target/debug/deps/tep_semantics-de03f7ffa83b01b7.d: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

/root/repo/target/debug/deps/tep_semantics-de03f7ffa83b01b7: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

crates/semantics/src/lib.rs:
crates/semantics/src/measure.rs:
crates/semantics/src/projection.rs:
crates/semantics/src/pvsm.rs:
crates/semantics/src/space.rs:
crates/semantics/src/sparse.rs:
crates/semantics/src/theme.rs:
