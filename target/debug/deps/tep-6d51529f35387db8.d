/root/repo/target/debug/deps/tep-6d51529f35387db8.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtep-6d51529f35387db8.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
