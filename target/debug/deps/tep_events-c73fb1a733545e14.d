/root/repo/target/debug/deps/tep_events-c73fb1a733545e14.d: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

/root/repo/target/debug/deps/tep_events-c73fb1a733545e14: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

crates/events/src/lib.rs:
crates/events/src/error.rs:
crates/events/src/event.rs:
crates/events/src/operator.rs:
crates/events/src/parser.rs:
crates/events/src/predicate.rs:
crates/events/src/subscription.rs:
crates/events/src/tuple.rs:
