/root/repo/target/debug/deps/tep_bench-792bbd5ddb91d16a.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/tep_bench-792bbd5ddb91d16a: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
