/root/repo/target/debug/deps/tep_index-12fadceeebf98272.d: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libtep_index-12fadceeebf98272.rmeta: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs Cargo.toml

crates/index/src/lib.rs:
crates/index/src/inverted.rs:
crates/index/src/postings.rs:
crates/index/src/tokenizer.rs:
crates/index/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
