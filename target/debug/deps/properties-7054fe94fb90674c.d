/root/repo/target/debug/deps/properties-7054fe94fb90674c.d: crates/core/../../tests/properties.rs

/root/repo/target/debug/deps/properties-7054fe94fb90674c: crates/core/../../tests/properties.rs

crates/core/../../tests/properties.rs:
