/root/repo/target/debug/deps/tep_corpus-6522ce7dcfa1b865.d: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

/root/repo/target/debug/deps/libtep_corpus-6522ce7dcfa1b865.rlib: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

/root/repo/target/debug/deps/libtep_corpus-6522ce7dcfa1b865.rmeta: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

crates/corpus/src/lib.rs:
crates/corpus/src/config.rs:
crates/corpus/src/corpus.rs:
crates/corpus/src/document.rs:
crates/corpus/src/filler.rs:
crates/corpus/src/generator.rs:
