/root/repo/target/debug/deps/assignment-7b63a387c7e36b1f.d: crates/bench/benches/assignment.rs

/root/repo/target/debug/deps/assignment-7b63a387c7e36b1f: crates/bench/benches/assignment.rs

crates/bench/benches/assignment.rs:
