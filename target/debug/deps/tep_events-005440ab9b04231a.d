/root/repo/target/debug/deps/tep_events-005440ab9b04231a.d: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs Cargo.toml

/root/repo/target/debug/deps/libtep_events-005440ab9b04231a.rmeta: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs Cargo.toml

crates/events/src/lib.rs:
crates/events/src/error.rs:
crates/events/src/event.rs:
crates/events/src/operator.rs:
crates/events/src/parser.rs:
crates/events/src/predicate.rs:
crates/events/src/subscription.rs:
crates/events/src/tuple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
