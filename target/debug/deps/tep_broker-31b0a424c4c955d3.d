/root/repo/target/debug/deps/tep_broker-31b0a424c4c955d3.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs

/root/repo/target/debug/deps/tep_broker-31b0a424c4c955d3: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/config.rs:
crates/broker/src/notification.rs:
crates/broker/src/stats.rs:
