/root/repo/target/debug/deps/tep_events-e648367b8d71a76d.d: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

/root/repo/target/debug/deps/libtep_events-e648367b8d71a76d.rlib: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

/root/repo/target/debug/deps/libtep_events-e648367b8d71a76d.rmeta: crates/events/src/lib.rs crates/events/src/error.rs crates/events/src/event.rs crates/events/src/operator.rs crates/events/src/parser.rs crates/events/src/predicate.rs crates/events/src/subscription.rs crates/events/src/tuple.rs

crates/events/src/lib.rs:
crates/events/src/error.rs:
crates/events/src/event.rs:
crates/events/src/operator.rs:
crates/events/src/parser.rs:
crates/events/src/predicate.rs:
crates/events/src/subscription.rs:
crates/events/src/tuple.rs:
