/root/repo/target/debug/deps/pipeline-649d8a2b091780ce.d: crates/core/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-649d8a2b091780ce: crates/core/../../tests/pipeline.rs

crates/core/../../tests/pipeline.rs:
