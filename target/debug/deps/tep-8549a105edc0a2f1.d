/root/repo/target/debug/deps/tep-8549a105edc0a2f1.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libtep-8549a105edc0a2f1.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libtep-8549a105edc0a2f1.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
