/root/repo/target/debug/deps/index_build-646b61791e9b473f.d: crates/bench/benches/index_build.rs Cargo.toml

/root/repo/target/debug/deps/libindex_build-646b61791e9b473f.rmeta: crates/bench/benches/index_build.rs Cargo.toml

crates/bench/benches/index_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
