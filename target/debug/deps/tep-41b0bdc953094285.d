/root/repo/target/debug/deps/tep-41b0bdc953094285.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/tep-41b0bdc953094285: crates/core/src/lib.rs

crates/core/src/lib.rs:
