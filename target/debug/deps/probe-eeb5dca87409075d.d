/root/repo/target/debug/deps/probe-eeb5dca87409075d.d: crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-eeb5dca87409075d.rmeta: crates/bench/src/bin/probe.rs Cargo.toml

crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
