/root/repo/target/debug/deps/probe-c80e47371a7ffe60.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-c80e47371a7ffe60: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
