/root/repo/target/debug/deps/index_build-49417aee0f4b6ca7.d: crates/bench/benches/index_build.rs

/root/repo/target/debug/deps/index_build-49417aee0f4b6ca7: crates/bench/benches/index_build.rs

crates/bench/benches/index_build.rs:
