/root/repo/target/debug/deps/tep_broker-47936881455a9a8e.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

/root/repo/target/debug/deps/tep_broker-47936881455a9a8e: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/config.rs:
crates/broker/src/notification.rs:
crates/broker/src/stats.rs:
crates/broker/src/supervisor.rs:
