/root/repo/target/debug/deps/tep_corpus-be269360cc356a19.d: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs Cargo.toml

/root/repo/target/debug/deps/libtep_corpus-be269360cc356a19.rmeta: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/config.rs:
crates/corpus/src/corpus.rs:
crates/corpus/src/document.rs:
crates/corpus/src/filler.rs:
crates/corpus/src/generator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
