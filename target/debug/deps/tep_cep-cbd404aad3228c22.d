/root/repo/target/debug/deps/tep_cep-cbd404aad3228c22.d: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

/root/repo/target/debug/deps/libtep_cep-cbd404aad3228c22.rlib: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

/root/repo/target/debug/deps/libtep_cep-cbd404aad3228c22.rmeta: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs

crates/cep/src/lib.rs:
crates/cep/src/engine.rs:
crates/cep/src/pattern.rs:
