/root/repo/target/debug/deps/proptest-26aca5708c439ab7.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-26aca5708c439ab7.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-26aca5708c439ab7.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
