/root/repo/target/debug/deps/serde_json-64f7bfe21fa88158.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-64f7bfe21fa88158.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-64f7bfe21fa88158.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
