/root/repo/target/debug/deps/serde-33f0553b8e3ec86e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-33f0553b8e3ec86e: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
