/root/repo/target/debug/deps/repro-0be9b034bbf5d360.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0be9b034bbf5d360: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
