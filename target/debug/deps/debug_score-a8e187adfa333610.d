/root/repo/target/debug/deps/debug_score-a8e187adfa333610.d: crates/eval/tests/debug_score.rs

/root/repo/target/debug/deps/debug_score-a8e187adfa333610: crates/eval/tests/debug_score.rs

crates/eval/tests/debug_score.rs:
