/root/repo/target/debug/deps/probe-42d9e277934d344f.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-42d9e277934d344f: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
