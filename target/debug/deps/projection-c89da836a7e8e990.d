/root/repo/target/debug/deps/projection-c89da836a7e8e990.d: crates/bench/benches/projection.rs Cargo.toml

/root/repo/target/debug/deps/libprojection-c89da836a7e8e990.rmeta: crates/bench/benches/projection.rs Cargo.toml

crates/bench/benches/projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
