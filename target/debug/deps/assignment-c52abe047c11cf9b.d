/root/repo/target/debug/deps/assignment-c52abe047c11cf9b.d: crates/bench/benches/assignment.rs Cargo.toml

/root/repo/target/debug/deps/libassignment-c52abe047c11cf9b.rmeta: crates/bench/benches/assignment.rs Cargo.toml

crates/bench/benches/assignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
