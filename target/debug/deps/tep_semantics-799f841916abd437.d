/root/repo/target/debug/deps/tep_semantics-799f841916abd437.d: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

/root/repo/target/debug/deps/libtep_semantics-799f841916abd437.rlib: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

/root/repo/target/debug/deps/libtep_semantics-799f841916abd437.rmeta: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs

crates/semantics/src/lib.rs:
crates/semantics/src/measure.rs:
crates/semantics/src/projection.rs:
crates/semantics/src/pvsm.rs:
crates/semantics/src/space.rs:
crates/semantics/src/sparse.rs:
crates/semantics/src/theme.rs:
