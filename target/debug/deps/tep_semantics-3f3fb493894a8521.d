/root/repo/target/debug/deps/tep_semantics-3f3fb493894a8521.d: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs Cargo.toml

/root/repo/target/debug/deps/libtep_semantics-3f3fb493894a8521.rmeta: crates/semantics/src/lib.rs crates/semantics/src/measure.rs crates/semantics/src/projection.rs crates/semantics/src/pvsm.rs crates/semantics/src/space.rs crates/semantics/src/sparse.rs crates/semantics/src/theme.rs Cargo.toml

crates/semantics/src/lib.rs:
crates/semantics/src/measure.rs:
crates/semantics/src/projection.rs:
crates/semantics/src/pvsm.rs:
crates/semantics/src/space.rs:
crates/semantics/src/sparse.rs:
crates/semantics/src/theme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
