/root/repo/target/debug/deps/tep_bench-60f711370c069509.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libtep_bench-60f711370c069509.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libtep_bench-60f711370c069509.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
