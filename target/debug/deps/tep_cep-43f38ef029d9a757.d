/root/repo/target/debug/deps/tep_cep-43f38ef029d9a757.d: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs crates/cep/src/proptests.rs

/root/repo/target/debug/deps/tep_cep-43f38ef029d9a757: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs crates/cep/src/proptests.rs

crates/cep/src/lib.rs:
crates/cep/src/engine.rs:
crates/cep/src/pattern.rs:
crates/cep/src/proptests.rs:
