/root/repo/target/debug/deps/tep_index-27e24c4639970f4b.d: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

/root/repo/target/debug/deps/libtep_index-27e24c4639970f4b.rlib: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

/root/repo/target/debug/deps/libtep_index-27e24c4639970f4b.rmeta: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

crates/index/src/lib.rs:
crates/index/src/inverted.rs:
crates/index/src/postings.rs:
crates/index/src/tokenizer.rs:
crates/index/src/vocab.rs:
