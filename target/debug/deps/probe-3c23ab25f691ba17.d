/root/repo/target/debug/deps/probe-3c23ab25f691ba17.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-3c23ab25f691ba17: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
