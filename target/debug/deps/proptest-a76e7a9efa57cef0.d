/root/repo/target/debug/deps/proptest-a76e7a9efa57cef0.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a76e7a9efa57cef0.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
