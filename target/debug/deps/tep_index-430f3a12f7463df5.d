/root/repo/target/debug/deps/tep_index-430f3a12f7463df5.d: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libtep_index-430f3a12f7463df5.rmeta: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs Cargo.toml

crates/index/src/lib.rs:
crates/index/src/inverted.rs:
crates/index/src/postings.rs:
crates/index/src/tokenizer.rs:
crates/index/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
