/root/repo/target/debug/deps/tep_thesaurus-c92892c7e22df04d.d: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs Cargo.toml

/root/repo/target/debug/deps/libtep_thesaurus-c92892c7e22df04d.rmeta: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs Cargo.toml

crates/thesaurus/src/lib.rs:
crates/thesaurus/src/builder.rs:
crates/thesaurus/src/concept.rs:
crates/thesaurus/src/domain.rs:
crates/thesaurus/src/error.rs:
crates/thesaurus/src/eurovoc.rs:
crates/thesaurus/src/term.rs:
crates/thesaurus/src/thesaurus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
