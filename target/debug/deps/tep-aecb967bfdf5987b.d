/root/repo/target/debug/deps/tep-aecb967bfdf5987b.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libtep-aecb967bfdf5987b.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libtep-aecb967bfdf5987b.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
