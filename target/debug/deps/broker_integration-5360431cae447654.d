/root/repo/target/debug/deps/broker_integration-5360431cae447654.d: crates/core/../../tests/broker_integration.rs Cargo.toml

/root/repo/target/debug/deps/libbroker_integration-5360431cae447654.rmeta: crates/core/../../tests/broker_integration.rs Cargo.toml

crates/core/../../tests/broker_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
