/root/repo/target/debug/deps/repro-dbd5e2191e2cb191.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-dbd5e2191e2cb191: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
