/root/repo/target/debug/deps/projection-1e7d9dfe84f77426.d: crates/bench/benches/projection.rs

/root/repo/target/debug/deps/projection-1e7d9dfe84f77426: crates/bench/benches/projection.rs

crates/bench/benches/projection.rs:
