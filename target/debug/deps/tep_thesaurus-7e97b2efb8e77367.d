/root/repo/target/debug/deps/tep_thesaurus-7e97b2efb8e77367.d: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs

/root/repo/target/debug/deps/libtep_thesaurus-7e97b2efb8e77367.rlib: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs

/root/repo/target/debug/deps/libtep_thesaurus-7e97b2efb8e77367.rmeta: crates/thesaurus/src/lib.rs crates/thesaurus/src/builder.rs crates/thesaurus/src/concept.rs crates/thesaurus/src/domain.rs crates/thesaurus/src/error.rs crates/thesaurus/src/eurovoc.rs crates/thesaurus/src/term.rs crates/thesaurus/src/thesaurus.rs

crates/thesaurus/src/lib.rs:
crates/thesaurus/src/builder.rs:
crates/thesaurus/src/concept.rs:
crates/thesaurus/src/domain.rs:
crates/thesaurus/src/error.rs:
crates/thesaurus/src/eurovoc.rs:
crates/thesaurus/src/term.rs:
crates/thesaurus/src/thesaurus.rs:
