/root/repo/target/debug/deps/probe-c5abbc3558fe90ed.d: crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-c5abbc3558fe90ed.rmeta: crates/bench/src/bin/probe.rs Cargo.toml

crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
