/root/repo/target/debug/deps/tep_bench-d5af8eb08e286ff9.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libtep_bench-d5af8eb08e286ff9.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libtep_bench-d5af8eb08e286ff9.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
