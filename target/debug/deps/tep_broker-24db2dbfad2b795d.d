/root/repo/target/debug/deps/tep_broker-24db2dbfad2b795d.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs Cargo.toml

/root/repo/target/debug/deps/libtep_broker-24db2dbfad2b795d.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/config.rs:
crates/broker/src/notification.rs:
crates/broker/src/stats.rs:
crates/broker/src/supervisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
