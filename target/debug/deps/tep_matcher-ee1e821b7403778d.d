/root/repo/target/debug/deps/tep_matcher-ee1e821b7403778d.d: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs Cargo.toml

/root/repo/target/debug/deps/libtep_matcher-ee1e821b7403778d.rmeta: crates/matcher/src/lib.rs crates/matcher/src/assignment.rs crates/matcher/src/baselines.rs crates/matcher/src/config.rs crates/matcher/src/fault.rs crates/matcher/src/mapping.rs crates/matcher/src/matcher.rs crates/matcher/src/similarity.rs Cargo.toml

crates/matcher/src/lib.rs:
crates/matcher/src/assignment.rs:
crates/matcher/src/baselines.rs:
crates/matcher/src/config.rs:
crates/matcher/src/fault.rs:
crates/matcher/src/mapping.rs:
crates/matcher/src/matcher.rs:
crates/matcher/src/similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
