/root/repo/target/debug/deps/end_to_end-efc277ee2ad3e2ae.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-efc277ee2ad3e2ae: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
