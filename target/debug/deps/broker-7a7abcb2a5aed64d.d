/root/repo/target/debug/deps/broker-7a7abcb2a5aed64d.d: crates/bench/benches/broker.rs Cargo.toml

/root/repo/target/debug/deps/libbroker-7a7abcb2a5aed64d.rmeta: crates/bench/benches/broker.rs Cargo.toml

crates/bench/benches/broker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
