/root/repo/target/debug/deps/tep_corpus-550db10e8f016dc1.d: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

/root/repo/target/debug/deps/libtep_corpus-550db10e8f016dc1.rlib: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

/root/repo/target/debug/deps/libtep_corpus-550db10e8f016dc1.rmeta: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs

crates/corpus/src/lib.rs:
crates/corpus/src/config.rs:
crates/corpus/src/corpus.rs:
crates/corpus/src/document.rs:
crates/corpus/src/filler.rs:
crates/corpus/src/generator.rs:
