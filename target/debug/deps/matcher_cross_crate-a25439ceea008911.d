/root/repo/target/debug/deps/matcher_cross_crate-a25439ceea008911.d: crates/core/../../tests/matcher_cross_crate.rs

/root/repo/target/debug/deps/matcher_cross_crate-a25439ceea008911: crates/core/../../tests/matcher_cross_crate.rs

crates/core/../../tests/matcher_cross_crate.rs:
