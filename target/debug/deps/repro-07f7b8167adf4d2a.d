/root/repo/target/debug/deps/repro-07f7b8167adf4d2a.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-07f7b8167adf4d2a.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
