/root/repo/target/debug/deps/tep_corpus-2e4aada32824c438.d: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs Cargo.toml

/root/repo/target/debug/deps/libtep_corpus-2e4aada32824c438.rmeta: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/corpus.rs crates/corpus/src/document.rs crates/corpus/src/filler.rs crates/corpus/src/generator.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/config.rs:
crates/corpus/src/corpus.rs:
crates/corpus/src/document.rs:
crates/corpus/src/filler.rs:
crates/corpus/src/generator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
