/root/repo/target/debug/deps/tep_broker-c0ba344f678224e6.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

/root/repo/target/debug/deps/libtep_broker-c0ba344f678224e6.rlib: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

/root/repo/target/debug/deps/libtep_broker-c0ba344f678224e6.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/config.rs:
crates/broker/src/notification.rs:
crates/broker/src/stats.rs:
crates/broker/src/supervisor.rs:
