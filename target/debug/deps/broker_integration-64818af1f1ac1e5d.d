/root/repo/target/debug/deps/broker_integration-64818af1f1ac1e5d.d: crates/core/../../tests/broker_integration.rs

/root/repo/target/debug/deps/broker_integration-64818af1f1ac1e5d: crates/core/../../tests/broker_integration.rs

crates/core/../../tests/broker_integration.rs:
