/root/repo/target/debug/deps/repro-146a5b7f2872870b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-146a5b7f2872870b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
