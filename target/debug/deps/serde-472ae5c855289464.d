/root/repo/target/debug/deps/serde-472ae5c855289464.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-472ae5c855289464.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-472ae5c855289464.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
