/root/repo/target/debug/deps/tep_cep-749f9d46378788a5.d: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs Cargo.toml

/root/repo/target/debug/deps/libtep_cep-749f9d46378788a5.rmeta: crates/cep/src/lib.rs crates/cep/src/engine.rs crates/cep/src/pattern.rs Cargo.toml

crates/cep/src/lib.rs:
crates/cep/src/engine.rs:
crates/cep/src/pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
