/root/repo/target/debug/deps/tep_broker-22681aa205bd90f1.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs Cargo.toml

/root/repo/target/debug/deps/libtep_broker-22681aa205bd90f1.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/config.rs crates/broker/src/notification.rs crates/broker/src/stats.rs crates/broker/src/supervisor.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/config.rs:
crates/broker/src/notification.rs:
crates/broker/src/stats.rs:
crates/broker/src/supervisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
