/root/repo/target/debug/deps/tep_index-af9123bce704f704.d: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

/root/repo/target/debug/deps/libtep_index-af9123bce704f704.rlib: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

/root/repo/target/debug/deps/libtep_index-af9123bce704f704.rmeta: crates/index/src/lib.rs crates/index/src/inverted.rs crates/index/src/postings.rs crates/index/src/tokenizer.rs crates/index/src/vocab.rs

crates/index/src/lib.rs:
crates/index/src/inverted.rs:
crates/index/src/postings.rs:
crates/index/src/tokenizer.rs:
crates/index/src/vocab.rs:
