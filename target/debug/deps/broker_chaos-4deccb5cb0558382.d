/root/repo/target/debug/deps/broker_chaos-4deccb5cb0558382.d: crates/core/../../tests/broker_chaos.rs

/root/repo/target/debug/deps/broker_chaos-4deccb5cb0558382: crates/core/../../tests/broker_chaos.rs

crates/core/../../tests/broker_chaos.rs:
