/root/repo/target/debug/deps/broker_chaos-e55fc366e342b7d5.d: crates/core/../../tests/broker_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libbroker_chaos-e55fc366e342b7d5.rmeta: crates/core/../../tests/broker_chaos.rs Cargo.toml

crates/core/../../tests/broker_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
