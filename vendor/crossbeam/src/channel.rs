//! Multi-producer multi-consumer bounded channels (API subset of
//! `crossbeam-channel`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Creates a bounded MPMC channel with the given capacity (min 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity.max(1)),
            senders: 1,
            receivers: 1,
            closed: false,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

struct State<T> {
    buf: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Explicitly closed via [`Sender::close`]: sends fail immediately,
    /// receivers drain what is buffered and then observe a disconnect.
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; cloneable (MPMC: clones steal from one queue).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Error returned by [`Sender::send`]: all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Sender::send_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full past the deadline.
    Timeout(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty disconnected channel")
    }
}

impl<T> Sender<T> {
    /// Blocks until the value is enqueued or every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 || state.closed {
                return Err(SendError(value));
            }
            if state.buf.len() < self.inner.capacity {
                state.buf.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Enqueues without blocking, failing when full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 || state.closed {
            return Err(TrySendError::Disconnected(value));
        }
        if state.buf.len() >= self.inner.capacity {
            return Err(TrySendError::Full(value));
        }
        state.buf.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocks at most `timeout` for a queue slot.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 || state.closed {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if state.buf.len() < self.inner.capacity {
                state.buf.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _timed_out) = self
                .inner
                .not_full
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel for **all** handles: every subsequent send (from
    /// any sender clone) fails with a disconnect error, blocked senders
    /// wake and fail, and receivers drain what is already buffered before
    /// observing the disconnect.
    ///
    /// This lets an owner shut the channel down without dropping shared
    /// `Sender` clones — the basis of a lock-free publish path that keeps
    /// a plain `Sender` instead of `RwLock<Option<Sender>>`.
    pub fn close(&self) {
        let mut state = self.inner.lock();
        if !state.closed {
            state.closed = true;
            // Wake both sides: blocked senders must fail, blocked
            // receivers must re-check for the disconnect.
            self.inner.not_full.notify_all();
            self.inner.not_empty.notify_all();
        }
    }

    /// Whether [`Sender::close`] was called on any handle of this channel.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(value) = state.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 || state.closed {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until at least one value is available (or the channel
    /// disconnects), then moves up to `max` queued values into `buf` under
    /// a **single** lock acquisition. Returns how many values were
    /// appended (≥ 1 on `Ok`).
    ///
    /// This is the batched dequeue primitive: a worker draining N jobs per
    /// acquisition pays one mutex round-trip and at most one parked-thread
    /// wakeup for the whole batch instead of per job. FIFO order is
    /// preserved — `buf` receives values in exactly the order senders
    /// enqueued them.
    pub fn recv_batch(&self, buf: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        if max == 0 {
            return Ok(0);
        }
        let mut state = self.inner.lock();
        loop {
            if !state.buf.is_empty() {
                let n = state.buf.len().min(max);
                buf.extend(state.buf.drain(..n));
                // Freed `n` capacity slots: wake every blocked sender when
                // more than one slot opened, else a single one suffices.
                if n > 1 {
                    self.inner.not_full.notify_all();
                } else {
                    self.inner.not_full.notify_one();
                }
                return Ok(n);
            }
            if state.senders == 0 || state.closed {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking batch drain: moves up to `max` already-queued values
    /// into `buf`. `Err(TryRecvError::Empty)` when nothing is queued but
    /// senders remain, `Err(TryRecvError::Disconnected)` when nothing is
    /// queued and the channel is disconnected (or closed).
    pub fn drain_into(&self, buf: &mut Vec<T>, max: usize) -> Result<usize, TryRecvError> {
        let mut state = self.inner.lock();
        if state.buf.is_empty() || max == 0 {
            return if state.senders == 0 || state.closed {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            };
        }
        let n = state.buf.len().min(max);
        buf.extend(state.buf.drain(..n));
        if n > 1 {
            self.inner.not_full.notify_all();
        } else {
            self.inner.not_full.notify_one();
        }
        Ok(n)
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(value) = state.buf.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 || state.closed {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks at most `timeout` for a value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(value) = state.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 || state.closed {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator over currently queued values.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocking iterator over received values; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over queued values; see [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn send_timeout_expires_on_full_queue() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(20));
        assert_eq!(err, Err(SendTimeoutError::Timeout(2)));
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn blocked_send_unblocks_when_receiver_drains() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let (tx, rx) = bounded(8);
        let mut producers = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn iter_ends_at_disconnect() {
        let (tx, rx) = bounded(4);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.iter().count(), 2);
    }

    #[test]
    fn recv_batch_preserves_fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..6 {
            tx.send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(rx.recv_batch(&mut buf, 6), Ok(6));
        assert_eq!(buf, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn recv_batch_caps_at_max_and_leaves_the_rest() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(rx.recv_batch(&mut buf, 3), Ok(3));
        assert_eq!(buf, vec![0, 1, 2]);
        assert_eq!(rx.len(), 2);
        // The remainder comes out in order on the next batch.
        assert_eq!(rx.recv_batch(&mut buf, 3), Ok(2));
        assert_eq!(buf, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_batch_returns_partial_when_fewer_queued() {
        let (tx, rx) = bounded(8);
        tx.send(42).unwrap();
        let mut buf = Vec::new();
        // Asks for far more than is queued: returns what's there, never
        // blocks waiting to fill the batch.
        assert_eq!(rx.recv_batch(&mut buf, 64), Ok(1));
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn recv_batch_zero_max_is_a_no_op() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        let mut buf = Vec::new();
        assert_eq!(rx.recv_batch(&mut buf, 0), Ok(0));
        assert!(buf.is_empty());
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn recv_batch_blocks_until_first_item() {
        let (tx, rx) = bounded(4);
        let h = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let n = rx.recv_batch(&mut buf, 4).unwrap();
            (n, buf)
        });
        std::thread::sleep(Duration::from_millis(10));
        tx.send(7).unwrap();
        let (n, buf) = h.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf, vec![7]);
    }

    #[test]
    fn recv_batch_drains_remainder_after_disconnect() {
        // Disconnect mid-drain: buffered values must still come out before
        // the disconnect error surfaces.
        let (tx, rx) = bounded(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send(3).unwrap();
        drop(tx);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_batch(&mut buf, 2), Ok(2));
        assert_eq!(rx.recv_batch(&mut buf, 2), Ok(1));
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(rx.recv_batch(&mut buf, 2), Err(RecvError));
    }

    #[test]
    fn recv_batch_unblocks_on_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        let h = std::thread::spawn(move || rx.recv_batch(&mut Vec::new(), 4));
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_batch_frees_capacity_for_blocked_senders() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let blocked: Vec<_> = (0..2)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(10 + i))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        let mut buf = Vec::new();
        // Draining two slots must wake *both* blocked senders.
        assert_eq!(rx.recv_batch(&mut buf, 2), Ok(2));
        for h in blocked {
            h.join().unwrap().unwrap();
        }
        assert_eq!(rx.recv_batch(&mut buf, 4), Ok(2));
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn drain_into_is_non_blocking() {
        let (tx, rx) = bounded(4);
        let mut buf = Vec::new();
        assert_eq!(rx.drain_into(&mut buf, 4), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.drain_into(&mut buf, 1), Ok(1));
        assert_eq!(rx.drain_into(&mut buf, 8), Ok(1));
        assert_eq!(buf, vec![1, 2]);
        drop(tx);
        assert_eq!(rx.drain_into(&mut buf, 4), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn close_fails_future_sends_and_drains_buffered() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        assert!(!tx.is_closed());
        tx.close();
        assert!(tx.is_closed());
        // Every sender clone observes the close immediately.
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
        assert_eq!(tx2.send(3), Err(SendError(3)));
        // Buffered values drain before the disconnect surfaces.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn close_wakes_blocked_senders_and_receivers() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        let sender = std::thread::spawn(move || tx2.send(2));
        let receiver = std::thread::spawn(move || {
            // Drain the one buffered value, then block on an empty queue.
            let first = rx.recv();
            let second = rx.recv();
            (first, second)
        });
        std::thread::sleep(Duration::from_millis(10));
        tx.close();
        // The blocked sender either managed to enqueue before the close or
        // fails with a disconnect; it must not hang either way.
        let _ = sender.join().unwrap();
        let (first, _second) = receiver.join().unwrap();
        assert_eq!(first, Ok(1));
    }
}
