//! Multi-producer multi-consumer bounded channels (API subset of
//! `crossbeam-channel`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Creates a bounded MPMC channel with the given capacity (min 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity.max(1)),
            senders: 1,
            receivers: 1,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

struct State<T> {
    buf: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; cloneable (MPMC: clones steal from one queue).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Error returned by [`Sender::send`]: all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Sender::send_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full past the deadline.
    Timeout(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty disconnected channel")
    }
}

impl<T> Sender<T> {
    /// Blocks until the value is enqueued or every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.buf.len() < self.inner.capacity {
                state.buf.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Enqueues without blocking, failing when full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if state.buf.len() >= self.inner.capacity {
            return Err(TrySendError::Full(value));
        }
        state.buf.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocks at most `timeout` for a queue slot.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if state.buf.len() < self.inner.capacity {
                state.buf.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _timed_out) = self
                .inner
                .not_full
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(value) = state.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(value) = state.buf.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks at most `timeout` for a value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(value) = state.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator over currently queued values.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocking iterator over received values; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over queued values; see [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn send_timeout_expires_on_full_queue() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(20));
        assert_eq!(err, Err(SendTimeoutError::Timeout(2)));
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn blocked_send_unblocks_when_receiver_drains() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let (tx, rx) = bounded(8);
        let mut producers = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn iter_ends_at_disconnect() {
        let (tx, rx) = bounded(4);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.iter().count(), 2);
    }
}
