//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] subset the broker uses: multi-producer,
//! multi-consumer bounded channels with disconnect detection, non-blocking
//! and deadline-bounded sends, and blocking/non-blocking receives. Built on
//! `std::sync::{Mutex, Condvar}`; semantics mirror `crossbeam-channel`:
//! a channel disconnects when all peers on the other side are dropped.

#![forbid(unsafe_code)]

pub mod channel;
