//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the serde shim's [`serde::Value`] data model to JSON text
//! (compact and pretty, 2-space indent like the real crate) and parses
//! JSON text back. Supports the full JSON grammar: objects, arrays,
//! strings with escapes (`\uXXXX` included), numbers, booleans, null.
//! Non-finite floats are a serialization error, matching real serde_json.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Re-export so callers can name the data model as `serde_json::Value`.
pub use serde::Value as JsonValue;

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::deserialize(&value)?)
}

// ------------------------------------------------------------------ writing

fn write_value(
    value: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Keep floats recognisable as floats on re-parse, the way the
            // real serde_json's shortest-round-trip printer does.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must follow.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low
                                            .checked_sub(0xDC00)
                                            .ok_or_else(|| Error::new("invalid low surrogate"))?);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at offset {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0", "floats stay floats");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\none \"two\" \\ tab\t🦀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""🦀""#).unwrap(), "🦀");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
