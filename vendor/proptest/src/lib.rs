//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`Strategy`] trait with `prop_map`, range strategies for integers
//! and floats, tuple strategies, `any::<bool>()`, [`Just`], a
//! regex-subset string strategy (`"[a-z]{2,8}"`-style patterns),
//! [`collection::vec`] / [`collection::btree_set`], and the
//! [`proptest!`] / `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! case number and message only), a fixed deterministic seed per test
//! name (override case count with `PROPTEST_CASES`), and rejection via
//! `prop_assume!` simply retries with fresh input up to a bounded number
//! of attempts.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

pub use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! any_uniform_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

any_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

// ------------------------------------------------------- string strategies

/// `&str` patterns are interpreted as a small regex subset: literal
/// characters, `[a-z]`-style classes, `( ... )` groups, and the
/// quantifiers `{m,n}`, `{n}`, `?`, `*`, `+` (the unbounded ones capped
/// at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
        let mut out = String::new();
        regex::generate(&pattern, rng, &mut out);
        out
    }
}

mod regex {
    use super::TestRng;
    use rand::Rng;

    pub(crate) struct Term {
        node: Node,
        min: u32,
        max: u32,
    }

    enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Term>),
    }

    pub(crate) fn parse(pattern: &str) -> Result<Vec<Term>, String> {
        let mut chars: Vec<char> = pattern.chars().collect();
        chars.reverse(); // pop() from the front
        let seq = parse_seq(&mut chars, false)?;
        if chars.is_empty() {
            Ok(seq)
        } else {
            Err("unbalanced `)`".into())
        }
    }

    fn parse_seq(rest: &mut Vec<char>, in_group: bool) -> Result<Vec<Term>, String> {
        let mut terms = Vec::new();
        while let Some(c) = rest.pop() {
            let node = match c {
                ')' if in_group => return Ok(terms),
                '[' => Node::Class(parse_class(rest)?),
                '(' => Node::Group(parse_seq(rest, true)?),
                '\\' => Node::Literal(rest.pop().ok_or("dangling escape")?),
                '|' | '.' | '^' | '$' => return Err(format!("unsupported metachar `{c}`")),
                c => Node::Literal(c),
            };
            let (min, max) = parse_quantifier(rest)?;
            terms.push(Term { node, min, max });
        }
        if in_group {
            Err("unterminated group".into())
        } else {
            Ok(terms)
        }
    }

    fn parse_class(rest: &mut Vec<char>) -> Result<Vec<(char, char)>, String> {
        let mut ranges = Vec::new();
        loop {
            let c = rest.pop().ok_or("unterminated class")?;
            match c {
                ']' => break,
                '^' if ranges.is_empty() => return Err("negated classes unsupported".into()),
                c => {
                    if rest.last() == Some(&'-')
                        && rest.get(rest.len().wrapping_sub(2)) != Some(&']')
                    {
                        rest.pop(); // the '-'
                        let hi = rest.pop().ok_or("unterminated range")?;
                        if hi < c {
                            return Err(format!("descending range {c}-{hi}"));
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
            }
        }
        if ranges.is_empty() {
            return Err("empty class".into());
        }
        Ok(ranges)
    }

    fn parse_quantifier(rest: &mut Vec<char>) -> Result<(u32, u32), String> {
        match rest.last() {
            Some('?') => {
                rest.pop();
                Ok((0, 1))
            }
            Some('*') => {
                rest.pop();
                Ok((0, 8))
            }
            Some('+') => {
                rest.pop();
                Ok((1, 8))
            }
            Some('{') => {
                rest.pop();
                let mut body = String::new();
                loop {
                    match rest.pop().ok_or("unterminated quantifier")? {
                        '}' => break,
                        c => body.push(c),
                    }
                }
                let parts: Vec<&str> = body.split(',').collect();
                let parse_u32 = |s: &str| {
                    s.trim()
                        .parse::<u32>()
                        .map_err(|_| format!("bad bound `{s}`"))
                };
                match parts.as_slice() {
                    [n] => {
                        let n = parse_u32(n)?;
                        Ok((n, n))
                    }
                    [m, n] => Ok((parse_u32(m)?, parse_u32(n)?)),
                    _ => Err(format!("bad quantifier `{{{body}}}`")),
                }
            }
            _ => Ok((1, 1)),
        }
    }

    pub(crate) fn generate(terms: &[Term], rng: &mut TestRng, out: &mut String) {
        for term in terms {
            let count = rng.gen_range(term.min..=term.max);
            for _ in 0..count {
                match &term.node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        let c = char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo);
                        out.push(c);
                    }
                    Node::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }
}

// ------------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Collection length: a fixed size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max_inclusive)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `BTreeSet` whose size is drawn from `size`. Duplicate
    /// elements are retried a bounded number of times, so a narrow element
    /// domain may yield a smaller set than requested.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 8 + 8 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

// ------------------------------------------------------------- test runner

pub mod test_runner {
    use rand::SeedableRng;

    /// Deterministic RNG driving all strategies.
    pub type TestRng = rand::rngs::SmallRng;

    /// Non-success outcome of one generated test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed; the test panics with this message.
        Fail(String),
        /// `prop_assume!` rejected the input; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    fn default_cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, stable across runs and platforms.
        let mut hash = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }

    /// Executes `test` against `PROPTEST_CASES` (default 64) generated
    /// inputs, seeded deterministically from the test name. Rejected cases
    /// (via `prop_assume!`) are retried with fresh input up to a bound.
    pub fn run<F>(name: &str, mut test: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = default_cases();
        let base = name_seed(name);
        let max_attempts = cases * 8 + 16;
        let mut passed = 0u64;
        let mut attempt = 0u64;
        while passed < cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest `{name}`: too many rejected cases \
                     ({passed}/{cases} passed in {attempt} attempts)"
                );
            }
            let mut rng =
                TestRng::seed_from_u64(base.wrapping_add(attempt.wrapping_mul(0x9e3779b97f4a7c15)));
            attempt += 1;
            match test(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed (case {passed}, attempt {attempt}): {msg}");
                }
            }
        }
    }
}

/// Defines property tests. Each function body runs once per generated
/// case with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}:{}: assertion failed: {}", file!(), line!(), stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}:{}: {}", file!(), line!(), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts two expressions are not equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Rejects the current case, retrying with fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    fn rng() -> super::TestRng {
        super::TestRng::seed_from_u64(7)
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let (a, b) = Strategy::generate(&(0usize..4, 1u64..5), &mut rng);
            assert!(a < 4 && (1..5).contains(&b));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{2,8}", &mut rng);
            assert!((2..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = Strategy::generate(&"[a-z]{1,8}( [a-z]{1,8})?", &mut rng);
            let words: Vec<&str> = t.split(' ').collect();
            assert!(
                (1..=2).contains(&words.len()) && words.iter().all(|w| (1..=8).contains(&w.len())),
                "{t:?}"
            );
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = rng();
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0u32..64, 0..24), &mut rng);
            assert!(v.len() < 24);
            let fixed = Strategy::generate(&crate::collection::vec(0.0f64..1.0, 35usize), &mut rng);
            assert_eq!(fixed.len(), 35);
            let s = Strategy::generate(&crate::collection::btree_set(0u32..64, 1..5), &mut rng);
            assert!(!s.is_empty() && s.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(x + u32::from(flag) - u32::from(flag), x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn macro_supports_assume_and_map(
            v in crate::collection::vec(1u32..10, 1..6),
            limit in 0u32..20,
        ) {
            prop_assume!(limit > 0);
            let capped = v.iter().map(|&x| x.min(limit)).collect::<Vec<_>>();
            prop_assert_eq!(capped.len(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::test_runner::run("always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
