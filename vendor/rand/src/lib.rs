//! Offline stand-in for the `rand` crate.
//!
//! The workspace seeds every random process from `SmallRng::seed_from_u64`,
//! so this shim ships a deterministic xoshiro256++ generator behind the
//! `Rng`/`SeedableRng` API subset the repo uses (`gen`, `gen_bool`,
//! `gen_range` over integer and float ranges). Streams differ from the
//! real `rand` crate, but determinism per seed — the property the
//! evaluation pipeline depends on — is preserved.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (the form used in-repo).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible directly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 significant bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Numeric types uniformly sampleable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let unit = f64::from_rng(rng) as $t;
                lo + (hi - lo) * unit
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = f64::from_rng(rng) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// User-facing generator methods (API subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::from_rng(self) < p
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ seeded via
    /// splitmix64), mirroring `rand::rngs::SmallRng`'s role.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start in the all-zero state.
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(sa, sc, "different seeds must diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut trues = 0;
        for _ in 0..2000 {
            let r: f64 = rng.gen();
            assert!((0.0..1.0).contains(&r));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (600..1400).contains(&trues),
            "gen_bool(0.5) wildly biased: {trues}"
        );
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
