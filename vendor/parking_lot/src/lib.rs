//! Offline stand-in for the `parking_lot` crate.
//!
//! The real crate is unavailable in this build environment (no network,
//! no registry cache), so this shim provides the subset of the API the
//! workspace uses — [`Mutex`] and [`RwLock`] with parking_lot's
//! *non-poisoning* semantics — implemented over `std::sync`. A thread
//! that panics while holding a guard does not poison the lock for
//! everyone else; the next locker simply proceeds, which is exactly the
//! behaviour the broker's panic-isolation layer relies on.

#![forbid(unsafe_code)]

use std::sync::{self, LockResult};

/// A non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// A non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn ignore_poison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(sync::PoisonError::into_inner)
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
