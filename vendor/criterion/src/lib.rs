//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::new`], [`Throughput::Elements`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until a small time budget is spent, reporting mean wall-clock ns/iter
//! (plus element throughput when configured). There is no statistical
//! analysis, HTML report, or baseline comparison — the goal is that
//! `cargo bench` compiles, runs quickly offline, and prints usable numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver; one per `criterion_group!` function.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Unit describing how many items one benchmark iteration processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier combining a function name and a parameter, e.g. `solve/8`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iterations: 0,
            budget: self.measurement_time,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iterations: 0,
            budget: self.measurement_time,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.iterations == 0 {
            eprintln!("  {}/{}: no iterations recorded", self.name, id.id);
            return;
        }
        let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
        let mut line = format!(
            "  {}/{}: {} iters, {:.1} ns/iter",
            self.name, id.id, bencher.iterations, ns_per_iter
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            if ns_per_iter > 0.0 {
                let elems_per_sec = n as f64 * 1e9 / ns_per_iter;
                line.push_str(&format!(", {elems_per_sec:.0} elem/s"));
            }
        }
        eprintln!("{line}");
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iterations: u64,
    budget: Duration,
}

impl Bencher {
    /// Runs the routine repeatedly until the measurement budget is spent,
    /// recording total elapsed time and iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (also catches panics early with a small iteration count).
        for _ in 0..3 {
            black_box(routine());
        }
        let started = Instant::now();
        loop {
            let before = Instant::now();
            black_box(routine());
            self.total += before.elapsed();
            self.iterations += 1;
            if started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Declares a benchmark group function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sample");
        group.sample_size(10);
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &m| b.iter(|| m * 7));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_counts_iterations() {
        benches();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("direct");
        group.measurement_time(Duration::from_millis(2));
        let mut saw_iters = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| 1u32);
            saw_iters = b.iterations;
        });
        assert!(saw_iters > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("solve", 8).id, "solve/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.id, "plain");
    }
}
