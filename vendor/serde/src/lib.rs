//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unavailable in this build environment (no network, no
//! registry cache), so this shim provides a deliberately small replacement:
//! a JSON-shaped [`Value`] data model, [`Serialize`]/[`Deserialize`] traits
//! that convert to and from it, and a `derive` feature re-exporting the
//! companion `serde_derive` proc-macros. The derive supports the subset the
//! workspace uses: named/tuple structs, enums with unit/tuple/struct
//! variants, `#[serde(default)]` on fields, and `#[serde(transparent)]`
//! containers. `serde_json` renders [`Value`] to JSON text and back.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Key-ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (accepts integer values).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.is_finite() && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// The boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Looks up a key in map entries (helper used by derived code).
pub fn value_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// A struct field absent from the input.
    pub fn missing_field(container: &str, field: &str) -> Error {
        Error(format!("missing field `{field}` in `{container}`"))
    }

    /// A type mismatch between the input value and the target type.
    pub fn expected(what: &str, got: &Value) -> Error {
        let shape = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        Error(format!("expected {what}, got {shape}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a [`Value`] into `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<bool, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<$t, Error> {
                let raw = value.as_i64().ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<$t, Error> {
                let raw = value.as_u64().ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<f64, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<f32, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<String, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<char, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", value)),
        }
    }
}

// ------------------------------------------------------------------ wrappers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Box<T>, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(value: &Value) -> Result<Arc<T>, Error> {
        T::deserialize(value).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

// --------------------------------------------------------------- collections

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Vec<T>, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::deserialize(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<BTreeSet<T>, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        // Sort for stable output where the element renders as a string.
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<HashSet<T>, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?;
        items.iter().map(T::deserialize).collect()
    }
}

/// Renders a map key to its JSON object-key string. Mirrors serde_json's
/// rule: keys must serialize to strings or integers.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize() {
        Value::Str(s) => s,
        Value::I64(i) => i.to_string(),
        Value::U64(u) => u.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other:?}"),
    }
}

/// Recovers a map key from its JSON object-key string, trying the string
/// form first and falling back to integer forms for numeric key types.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::U64(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::I64(i)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!(
        "cannot deserialize map key from `{key}`"
    )))
}

fn map_to_value<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    // Stable key order for reproducible JSON output.
    let mut rendered: Vec<(String, Value)> = entries
        .map(|(k, v)| (key_to_string(k), v.serialize()))
        .collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Map(rendered)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn deserialize(value: &Value) -> Result<BTreeMap<K, V>, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::expected("map", value))?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn deserialize(value: &Value) -> Result<HashMap<K, V>, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::expected("map", value))?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

// -------------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<($($name,)+), Error> {
                let items = value.as_seq().ok_or_else(|| Error::expected("tuple sequence", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ------------------------------------------------------------------ std time

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Value) -> Result<Duration, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::expected("duration map", value))?;
        let secs = value_get(entries, "secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("Duration", "secs"))?;
        let nanos = value_get(entries, "nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("Duration", "nanos"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&5u32.serialize()), Ok(5));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(
            f64::deserialize(&Value::I64(2)),
            Ok(2.0),
            "ints coerce to floats"
        );
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(3u32, 0.5f32), (9, 1.25)];
        let round = Vec::<(u32, f32)>::deserialize(&v.serialize()).unwrap();
        assert_eq!(v, round);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1usize);
        assert_eq!(
            BTreeMap::<String, usize>::deserialize(&m.serialize()).unwrap(),
            m
        );
    }

    #[test]
    fn options_and_duration() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::deserialize(&Value::U64(7)), Ok(Some(7)));
        let d = Duration::new(3, 500);
        assert_eq!(Duration::deserialize(&d.serialize()), Ok(d));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
        assert!(Vec::<u32>::deserialize(&Value::Bool(true)).is_err());
    }
}
