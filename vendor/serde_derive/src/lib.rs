//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote`) targeting the companion
//! `serde` shim's `Value` data model. Supported shapes — the ones this
//! workspace actually uses:
//!
//! * structs with named fields (`#[serde(default)]` honoured per field);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   sequences);
//! * `#[serde(transparent)]` single-field containers;
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching real serde's default representation).
//!
//! Generics and lifetimes are unsupported and panic at expansion time with
//! a clear message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.serialize_impl()
        .parse()
        .expect("serialize impl must parse")
}

/// Derives `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.deserialize_impl()
        .parse()
        .expect("deserialize impl must parse")
}

struct Field {
    /// JSON name (raw-identifier prefix stripped).
    name: String,
    /// Code-level accessor (keeps `r#`).
    accessor: String,
    /// `#[serde(default)]` present.
    default: bool,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

// ------------------------------------------------------------------ parsing

fn is_punct(tt: Option<&TokenTree>, c: char) -> bool {
    matches!(tt, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(tt: Option<&TokenTree>, word: &str) -> bool {
    matches!(tt, Some(TokenTree::Ident(id)) if id.to_string() == word)
}

/// Consumes leading `#[...]` attributes; returns whether any of them is a
/// `#[serde(...)]` attribute containing `flag` as a bare word.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize, flag: &str) -> bool {
    let mut found = false;
    while is_punct(tokens.get(*i), '#') {
        if let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if is_ident(inner.first(), "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let words = args.stream().to_string();
                    if words.split(',').any(|w| w.trim() == flag) {
                        found = true;
                    }
                }
            }
            *i += 2;
        } else {
            panic!("serde_derive shim: malformed attribute");
        }
    }
    found
}

/// Consumes a visibility modifier (`pub`, `pub(crate)`, ...).
fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if is_ident(tokens.get(*i), "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Splits a token list on commas at angle-bracket depth zero. Commas inside
/// parenthesised/bracketed groups are naturally invisible (they live inside
/// a `TokenTree::Group`); only `<...>` generic arguments need depth
/// tracking. Empty chunks (trailing commas) are dropped.
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<Field> {
    split_top_level(group_tokens)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            let default = eat_attrs(&chunk, &mut i, "default");
            eat_visibility(&chunk, &mut i);
            let accessor = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, got {other:?}"),
            };
            if !is_punct(chunk.get(i + 1), ':') {
                panic!("serde_derive shim: expected `:` after field `{accessor}`");
            }
            let name = accessor.strip_prefix("r#").unwrap_or(&accessor).to_string();
            Field {
                name,
                accessor,
                default,
            }
        })
        .collect()
}

fn count_tuple_fields(group_tokens: Vec<TokenTree>) -> usize {
    split_top_level(group_tokens).len()
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0;
        let transparent = eat_attrs(&tokens, &mut i, "transparent");
        eat_visibility(&tokens, &mut i);
        let keyword = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
        };
        i += 1;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected type name, got {other:?}"),
        };
        i += 1;
        if is_punct(tokens.get(i), '<') {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
        let body = match keyword.as_str() {
            "struct" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream().into_iter().collect()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream().into_iter().collect()))
                }
                other => {
                    panic!("serde_derive shim: unsupported struct body for `{name}`: {other:?}")
                }
            },
            "enum" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let variants = split_top_level(g.stream().into_iter().collect())
                        .into_iter()
                        .map(|chunk| {
                            let mut j = 0;
                            eat_attrs(&chunk, &mut j, "");
                            let vname = match chunk.get(j) {
                                Some(TokenTree::Ident(id)) => id.to_string(),
                                other => panic!(
                                    "serde_derive shim: expected variant name in `{name}`, got {other:?}"
                                ),
                            };
                            let body = match chunk.get(j + 1) {
                                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                                    VariantBody::Tuple(count_tuple_fields(
                                        g.stream().into_iter().collect(),
                                    ))
                                }
                                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                    VariantBody::Named(parse_named_fields(
                                        g.stream().into_iter().collect(),
                                    ))
                                }
                                _ => VariantBody::Unit,
                            };
                            Variant { name: vname, body }
                        })
                        .collect();
                    Body::Enum(variants)
                }
                other => panic!("serde_derive shim: unsupported enum body for `{name}`: {other:?}"),
            },
            other => panic!("serde_derive shim: cannot derive for `{other}` items"),
        };
        Item {
            name,
            transparent,
            body,
        }
    }

    // ------------------------------------------------------------- codegen

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Named(fields) if self.transparent => {
                let f = single_field(fields, name);
                format!("::serde::Serialize::serialize(&self.{})", f.accessor)
            }
            Body::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{}\"), ::serde::Serialize::serialize(&self.{}))",
                            f.name, f.accessor
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
            }
            Body::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            }
            Body::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| serialize_variant_arm(name, v))
                    .collect();
                format!("match self {{ {} }}", arms.join(" "))
            }
        };
        format!(
            "impl ::serde::Serialize for {name} {{\n                 fn serialize(&self) -> ::serde::Value {{ {body} }}\n             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Named(fields) if self.transparent => {
                let f = single_field(fields, name);
                format!(
                    "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::deserialize(value)? }})",
                    f.accessor
                )
            }
            Body::Named(fields) => {
                let inits: Vec<String> = fields.iter().map(|f| named_field_init(name, f)).collect();
                format!(
                    "let entries = match value.as_map() {{\n                         ::std::option::Option::Some(e) => e,\n                         ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::expected(\"map for struct {name}\", value)),\n                     }};\n                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Body::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))"
            ),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = match value.as_seq() {{\n                         ::std::option::Option::Some(s) => s,\n                         ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::expected(\"sequence for struct {name}\", value)),\n                     }};\n                     if items.len() != {n} {{\n                         return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}\"));\n                     }}\n                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Body::Enum(variants) => deserialize_enum_body(name, variants),
        };
        format!(
            "impl ::serde::Deserialize for {name} {{\n                 fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n             }}"
        )
    }
}

fn single_field<'a>(fields: &'a [Field], name: &str) -> &'a Field {
    match fields {
        [only] => only,
        _ => panic!("serde_derive shim: #[serde(transparent)] on `{name}` needs exactly one field"),
    }
}

fn named_field_init(container: &str, f: &Field) -> String {
    let fallback = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field(\"{container}\", \"{}\"))",
            f.name
        )
    };
    format!(
        "{}: match ::serde::value_get(entries, \"{}\") {{\n             ::std::option::Option::Some(v) => ::serde::Deserialize::deserialize(v)?,\n             ::std::option::Option::None => {{ {fallback} }}\n         }}",
        f.accessor, f.name
    )
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.body {
        VariantBody::Unit => format!(
            "{enum_name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantBody::Tuple(1) => format!(
            "{enum_name}::{vname}(f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::serialize(f0))]),"
        ),
        VariantBody::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantBody::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.accessor.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{}\"), ::serde::Serialize::serialize({}))",
                        f.name, f.accessor
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                binds.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(enum_name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.body, VariantBody::Unit))
        .map(|v| {
            format!(
                "\"{0}\" => ::std::result::Result::Ok({enum_name}::{0}),",
                v.name
            )
        })
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.body {
                VariantBody::Unit => None,
                VariantBody::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({enum_name}::{vname}(::serde::Deserialize::deserialize(inner)?)),"
                )),
                VariantBody::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n                             let items = match inner.as_seq() {{\n                                 ::std::option::Option::Some(s) if s.len() == {n} => s,\n                                 _ => return ::std::result::Result::Err(::serde::Error::custom(\"bad payload for variant {vname}\")),\n                             }};\n                             ::std::result::Result::Ok({enum_name}::{vname}({}))\n                         }}",
                        items.join(", ")
                    ))
                }
                VariantBody::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| named_field_init(enum_name, f))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n                             let entries = match inner.as_map() {{\n                                 ::std::option::Option::Some(e) => e,\n                                 ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\"bad payload for variant {vname}\")),\n                             }};\n                             ::std::result::Result::Ok({enum_name}::{vname} {{ {} }})\n                         }}",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match value {{\n             ::serde::Value::Str(s) => match s.as_str() {{\n                 {}\n                 other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{other}}` of {enum_name}\"))),\n             }},\n             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n                 let (key, inner) = &entries[0];\n                 match key.as_str() {{\n                     {}\n                     other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{other}}` of {enum_name}\"))),\n                 }}\n             }}\n             other => ::std::result::Result::Err(::serde::Error::expected(\"enum {enum_name}\", other)),\n         }}",
        unit_arms.join("\n                 "),
        payload_arms.join("\n                     ")
    )
}
